#include "hw/nic.h"

#include <gtest/gtest.h>

#include "os/world.h"

namespace ulnet::hw {
namespace {

using net::An1Header;
using net::EthHeader;
using net::Frame;
using net::MacAddr;

struct TwoHostFixture : ::testing::Test {
  os::World world;
};

Frame eth_frame(MacAddr dst, MacAddr src, std::size_t payload) {
  Frame f;
  EthHeader{dst, src, net::kEtherTypeRaw}.serialize(f.bytes);
  f.bytes.resize(EthHeader::kSize + payload, 0x5a);
  return f;
}

Frame an1_frame(MacAddr dst, MacAddr src, std::uint16_t bqi,
                std::size_t payload) {
  Frame f;
  An1Header h;
  h.dst = dst;
  h.src = src;
  h.bqi = bqi;
  h.ethertype = net::kEtherTypeRaw;
  h.serialize(f.bytes);
  f.bytes.resize(An1Header::kSize + payload, 0x5a);
  return f;
}

TEST_F(TwoHostFixture, LanceEndToEndChargesPioBothSides) {
  auto& link = world.add_ethernet();
  auto& ha = world.add_host("a");
  auto& hb = world.add_host("b");
  auto& na = world.attach_lance(ha, link, net::Ipv4Addr::parse("10.0.0.1"));
  auto& nb = world.attach_lance(hb, link, net::Ipv4Addr::parse("10.0.0.2"));

  int got = 0;
  nb.set_rx_handler(
      [&](sim::TaskCtx&, const Frame&, std::uint16_t) { got++; });

  const std::size_t payload = 1000;
  ha.cpu().submit(sim::kKernelSpace, sim::Prio::kNormal,
                  [&](sim::TaskCtx& ctx) {
                    na.transmit(ctx, eth_frame(nb.mac(), na.mac(), payload));
                  });
  world.run();

  EXPECT_EQ(got, 1);
  EXPECT_EQ(na.tx_frames(), 1u);
  EXPECT_EQ(nb.rx_frames(), 1u);
  const auto& cost = world.cost();
  const auto frame_len =
      static_cast<sim::Time>(EthHeader::kSize + payload);
  // Sender CPU: driver fixed + per-byte PIO.
  EXPECT_EQ(ha.cpu().busy_ns(),
            cost.driver_fixed + frame_len * cost.pio_per_byte);
  // Receiver CPU: interrupt entry + driver fixed + per-byte PIO.
  EXPECT_EQ(hb.cpu().busy_ns(), cost.interrupt_entry + cost.driver_fixed +
                                    frame_len * cost.pio_per_byte);
  EXPECT_EQ(world.metrics().interrupts, 1u);
}

TEST_F(TwoHostFixture, An1DeliversToAllocatedBqiRing) {
  auto& link = world.add_an1();
  auto& ha = world.add_host("a");
  auto& hb = world.add_host("b");
  auto& na = world.attach_an1(ha, link, net::Ipv4Addr::parse("10.1.0.1"));
  auto& nb = world.attach_an1(hb, link, net::Ipv4Addr::parse("10.1.0.2"));

  const std::uint16_t bqi = nb.alloc_bqi(4);
  ASSERT_NE(bqi, 0);
  nb.post_buffers(bqi, 4);

  std::uint16_t seen_bqi = 0xffff;
  nb.set_rx_handler([&](sim::TaskCtx&, const Frame&, std::uint16_t q) {
    seen_bqi = q;
  });

  ha.cpu().submit(sim::kKernelSpace, sim::Prio::kNormal,
                  [&](sim::TaskCtx& ctx) {
                    na.transmit(ctx, an1_frame(nb.mac(), na.mac(), bqi, 500));
                  });
  world.run();

  EXPECT_EQ(seen_bqi, bqi);
  EXPECT_EQ(nb.posted_buffers(bqi), 3);
  EXPECT_EQ(world.metrics().demux_hardware_runs, 1u);
}

TEST_F(TwoHostFixture, An1UnknownBqiFallsBackToKernelRing) {
  auto& link = world.add_an1();
  auto& ha = world.add_host("a");
  auto& hb = world.add_host("b");
  auto& na = world.attach_an1(ha, link, net::Ipv4Addr::parse("10.1.0.1"));
  auto& nb = world.attach_an1(hb, link, net::Ipv4Addr::parse("10.1.0.2"));

  std::uint16_t seen_bqi = 0xffff;
  nb.set_rx_handler([&](sim::TaskCtx&, const Frame&, std::uint16_t q) {
    seen_bqi = q;
  });

  ha.cpu().submit(sim::kKernelSpace, sim::Prio::kNormal,
                  [&](sim::TaskCtx& ctx) {
                    na.transmit(ctx, an1_frame(nb.mac(), na.mac(), 77, 100));
                  });
  world.run();
  EXPECT_EQ(seen_bqi, An1Nic::kKernelBqi);
}

TEST_F(TwoHostFixture, An1EmptyRingDropsFrame) {
  auto& link = world.add_an1();
  auto& ha = world.add_host("a");
  auto& hb = world.add_host("b");
  auto& na = world.attach_an1(ha, link, net::Ipv4Addr::parse("10.1.0.1"));
  auto& nb = world.attach_an1(hb, link, net::Ipv4Addr::parse("10.1.0.2"));

  const std::uint16_t bqi = nb.alloc_bqi(2);
  // No buffers posted.
  int got = 0;
  nb.set_rx_handler(
      [&](sim::TaskCtx&, const Frame&, std::uint16_t) { got++; });
  ha.cpu().submit(sim::kKernelSpace, sim::Prio::kNormal,
                  [&](sim::TaskCtx& ctx) {
                    na.transmit(ctx, an1_frame(nb.mac(), na.mac(), bqi, 100));
                  });
  world.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(nb.ring_drops(), 1u);
}

TEST_F(TwoHostFixture, An1BqiAllocationIsExclusive) {
  auto& link = world.add_an1();
  auto& ha = world.add_host("a");
  auto& na = world.attach_an1(ha, link, net::Ipv4Addr::parse("10.1.0.1"));
  auto b1 = na.alloc_bqi(1);
  auto b2 = na.alloc_bqi(1);
  EXPECT_NE(b1, 0);
  EXPECT_NE(b2, 0);
  EXPECT_NE(b1, b2);
  na.free_bqi(b1);
  EXPECT_FALSE(na.bqi_valid(b1));
  EXPECT_TRUE(na.bqi_valid(b2));
  auto b3 = na.alloc_bqi(1);
  EXPECT_EQ(b3, b1);  // slot reused after free
}

TEST_F(TwoHostFixture, An1PostBuffersCapsAtCapacity) {
  auto& link = world.add_an1();
  auto& ha = world.add_host("a");
  auto& na = world.attach_an1(ha, link, net::Ipv4Addr::parse("10.1.0.1"));
  auto bqi = na.alloc_bqi(3);
  na.post_buffers(bqi, 10);
  EXPECT_EQ(na.posted_buffers(bqi), 3);
}

// ---------------------------------------------------------------------------
// NAPI-style interrupt mitigation (poll mode)
// ---------------------------------------------------------------------------

TEST_F(TwoHostFixture, PollModeTakesOneInterruptPerBurst) {
  auto& link = world.add_ethernet();
  auto& ha = world.add_host("a");
  auto& na = world.attach_lance(ha, link, net::Ipv4Addr::parse("10.0.0.1"));
  Nic::PollConfig pc;
  pc.enabled = true;
  na.set_poll_config(pc);

  int got = 0;
  na.set_rx_handler(
      [&](sim::TaskCtx&, const Frame&, std::uint16_t) { got++; });

  // A burst of 8 frames lands before the CPU runs: the first arms one
  // interrupt, the rest join the device backlog silently.
  for (int i = 0; i < 8; ++i) {
    na.frame_arrived(eth_frame(na.mac(), na.mac(), 200));
  }
  world.run();
  EXPECT_EQ(got, 8);
  EXPECT_EQ(na.rx_frames(), 8u);
  EXPECT_EQ(world.metrics().interrupts, 1u);
  EXPECT_EQ(na.poll_transitions(), 1u);
  EXPECT_EQ(na.poll_frames(), 8u);
  EXPECT_EQ(na.poll_rearms(), 1u);

  // Quiescence re-armed the interrupt: the next frame raises a new one.
  na.frame_arrived(eth_frame(na.mac(), na.mac(), 200));
  world.run();
  EXPECT_EQ(got, 9);
  EXPECT_EQ(world.metrics().interrupts, 2u);
  EXPECT_EQ(na.poll_transitions(), 2u);
}

TEST_F(TwoHostFixture, PollBudgetBoundsEachRound) {
  auto& link = world.add_ethernet();
  auto& ha = world.add_host("a");
  auto& na = world.attach_lance(ha, link, net::Ipv4Addr::parse("10.0.0.1"));
  Nic::PollConfig pc;
  pc.enabled = true;
  pc.budget = 4;
  na.set_poll_config(pc);
  na.set_rx_handler([](sim::TaskCtx&, const Frame&, std::uint16_t) {});

  for (int i = 0; i < 10; ++i) {
    na.frame_arrived(eth_frame(na.mac(), na.mac(), 100));
  }
  world.run();
  // Rounds of 4 + 4 + 2: the first two exhaust the budget with backlog
  // left and yield; the last drains the remainder and re-arms.
  EXPECT_EQ(na.poll_frames(), 10u);
  EXPECT_EQ(na.poll_rounds(), 3u);
  EXPECT_EQ(na.poll_budget_exhausted(), 2u);
  EXPECT_EQ(na.poll_rearms(), 1u);
  EXPECT_EQ(world.metrics().interrupts, 1u);
  EXPECT_EQ(world.metrics().nic_poll_rounds, 3u);
}

TEST_F(TwoHostFixture, PollBacklogOverflowDrops) {
  auto& link = world.add_ethernet();
  auto& ha = world.add_host("a");
  auto& na = world.attach_lance(ha, link, net::Ipv4Addr::parse("10.0.0.1"));
  Nic::PollConfig pc;
  pc.enabled = true;
  pc.rx_ring = 4;
  na.set_poll_config(pc);
  na.set_rx_handler([](sim::TaskCtx&, const Frame&, std::uint16_t) {});

  for (int i = 0; i < 6; ++i) {
    na.frame_arrived(eth_frame(na.mac(), na.mac(), 100));
  }
  world.run();
  EXPECT_EQ(na.rx_frames(), 4u);
  EXPECT_EQ(na.rx_dropped(), 2u);
  EXPECT_EQ(world.metrics().nic_rx_dropped, 2u);
}

TEST_F(TwoHostFixture, PollRoundCostsFollowTheModel) {
  auto& link = world.add_ethernet();
  auto& ha = world.add_host("a");
  auto& na = world.attach_lance(ha, link, net::Ipv4Addr::parse("10.0.0.1"));
  Nic::PollConfig pc;
  pc.enabled = true;
  na.set_poll_config(pc);
  na.set_rx_handler([](sim::TaskCtx&, const Frame&, std::uint16_t) {});

  const std::size_t payload = 300;
  for (int i = 0; i < 8; ++i) {
    na.frame_arrived(eth_frame(na.mac(), na.mac(), payload));
  }
  world.run();
  // One interrupt entry for the whole burst, then per-frame poll
  // bookkeeping on top of the unchanged device costs (Lance PIO copy).
  const auto& cost = world.cost();
  const auto frame_len = static_cast<sim::Time>(EthHeader::kSize + payload);
  EXPECT_EQ(ha.cpu().busy_ns(),
            cost.interrupt_entry +
                8 * (cost.poll_per_frame + cost.driver_fixed +
                     frame_len * cost.pio_per_byte));
}

TEST_F(TwoHostFixture, RtClockQuantizesTo40ns) {
  auto& ha = world.add_host("a");
  world.loop().run_until(105);
  EXPECT_EQ(ha.clock().ticks(), 2u);
  EXPECT_EQ(ha.clock().now_ns(), 80);
}

}  // namespace
}  // namespace ulnet::hw
