// Differential tests for the TCP header-prediction fast path and for burst
// ACK coalescing.
//
// The VJ fast path is required to be *behavior- and cost-neutral*: for a
// qualifying segment it performs exactly the state updates and emissions
// the full input path would have performed, and it charges nothing extra in
// simulated time. The strongest check available in a deterministic
// simulator is differential: run the same scenario twice, shortcut on and
// off, and demand bit-identical outcomes -- same delivered byte stream,
// same retransmission count, same simulated time of the last byte. Any
// divergence, even a nanosecond, means the shortcut is not the identity it
// claims to be.
//
// The loss/reorder scenario matters most: drops and jitter force the
// connection in and out of fast-path eligibility (out-of-order queue
// non-empty, window updates, dup-ACK recovery), so the test covers the
// hand-off between the two paths, not just the steady state. Fault
// injection draws from the link's seeded RNG; identical fault patterns
// across the two runs are themselves evidence of an identical event
// schedule, since any extra or missing event would shift every later draw.
//
// ACK coalescing is deliberately NOT neutral (it changes the ACK schedule);
// its test asserts the stream survives intact with strictly fewer pure ACKs.
#include <gtest/gtest.h>

#include "api/testbed.h"
#include "api/workloads.h"
#include "core/user_level.h"
#include "proto/tcp.h"

namespace ulnet {
namespace {

struct Outcome {
  bool ok = false;
  bool data_valid = false;
  sim::Time last_byte = 0;
  std::uint64_t link_dropped = 0;
  std::uint64_t link_jittered = 0;
  // TCP module counters, client + server (user-level org only).
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t segments_sent = 0;
  std::uint64_t pure_acks = 0;
  std::uint64_t fast_acks = 0;
  std::uint64_t fast_data = 0;
};

Outcome run_bulk(api::OrgType org, const proto::TcpConfig& cfg, double loss_p,
                 sim::Time jitter_max, std::uint64_t seed) {
  api::Testbed bed(org, api::LinkType::kEthernet, seed);
  bed.app_a().set_tcp_config(cfg);
  bed.app_b().set_tcp_config(cfg);
  bed.link().faults().loss_p = loss_p;
  bed.link().faults().jitter_max = jitter_max;

  api::BulkTransfer wl(bed, 256 * 1024, 4096, 5001, /*verify_data=*/true);
  const auto res = wl.run(120 * sim::kSec);

  Outcome o;
  o.ok = res.ok;
  o.data_valid = res.data_valid;
  o.last_byte = res.last_byte;
  o.link_dropped = bed.link().faults().dropped;
  o.link_jittered = bed.link().faults().jittered;
  if (org == api::OrgType::kUserLevel) {
    const auto& a = bed.user_app_a()->library_stack().tcp().counters();
    const auto& b = bed.user_app_b()->library_stack().tcp().counters();
    o.retransmits = a.retransmits + b.retransmits;
    o.timeouts = a.timeouts + b.timeouts;
    o.segments_sent = a.segments_sent + b.segments_sent;
    o.pure_acks = a.pure_acks_sent + b.pure_acks_sent;
    o.fast_acks = a.fast_path_acks + b.fast_path_acks;
    o.fast_data = a.fast_path_data + b.fast_path_data;
  }
  return o;
}

proto::TcpConfig with_prediction(bool on) {
  proto::TcpConfig cfg;
  cfg.header_prediction = on;
  return cfg;
}

TEST(FastPathDiff, CleanBulkIsBitIdentical) {
  const Outcome on = run_bulk(api::OrgType::kUserLevel, with_prediction(true),
                              0, 0, /*seed=*/1);
  const Outcome off = run_bulk(api::OrgType::kUserLevel,
                               with_prediction(false), 0, 0, /*seed=*/1);
  ASSERT_TRUE(on.ok && on.data_valid);
  ASSERT_TRUE(off.ok && off.data_valid);
  EXPECT_EQ(on.last_byte, off.last_byte);
  EXPECT_EQ(on.retransmits, off.retransmits);
  EXPECT_EQ(on.segments_sent, off.segments_sent);
  EXPECT_EQ(on.pure_acks, off.pure_acks);
  // The shortcut actually ran -- this is a differential test, not a no-op.
  EXPECT_GT(on.fast_acks + on.fast_data, 0u);
  EXPECT_EQ(off.fast_acks + off.fast_data, 0u);
}

TEST(FastPathDiff, LossAndReorderIsBitIdentical) {
  // 2% loss plus enough jitter to reorder back-to-back frames: the
  // connection repeatedly falls out of fast-path eligibility (out-of-order
  // queue, dup-ACK recovery, RTO) and re-enters it after repair.
  const Outcome on = run_bulk(api::OrgType::kUserLevel, with_prediction(true),
                              0.02, 2 * sim::kMs, /*seed=*/7);
  const Outcome off =
      run_bulk(api::OrgType::kUserLevel, with_prediction(false), 0.02,
               2 * sim::kMs, /*seed=*/7);
  ASSERT_TRUE(on.ok && on.data_valid);
  ASSERT_TRUE(off.ok && off.data_valid);
  // The scenario really injected faults, identically in both runs.
  EXPECT_GT(on.link_dropped, 0u);
  EXPECT_GT(on.link_jittered, 0u);
  EXPECT_EQ(on.link_dropped, off.link_dropped);
  EXPECT_EQ(on.link_jittered, off.link_jittered);
  // Loss recovery happened, and identically.
  EXPECT_GT(on.retransmits, 0u);
  EXPECT_EQ(on.retransmits, off.retransmits);
  EXPECT_EQ(on.timeouts, off.timeouts);
  EXPECT_EQ(on.segments_sent, off.segments_sent);
  EXPECT_EQ(on.last_byte, off.last_byte);
  EXPECT_GT(on.fast_acks + on.fast_data, 0u);
}

TEST(FastPathDiff, InKernelOrgIsBitIdentical) {
  // The fast path lives in the shared protocol stack, so the in-kernel
  // baseline organization must show the same neutrality (module counters
  // are not exposed through this testbed; the delivered stream and the
  // simulated time of the last byte pin the behavior).
  const Outcome on = run_bulk(api::OrgType::kInKernel, with_prediction(true),
                              0.02, 2 * sim::kMs, /*seed=*/7);
  const Outcome off = run_bulk(api::OrgType::kInKernel,
                               with_prediction(false), 0.02, 2 * sim::kMs,
                               /*seed=*/7);
  ASSERT_TRUE(on.ok && on.data_valid);
  ASSERT_TRUE(off.ok && off.data_valid);
  EXPECT_EQ(on.last_byte, off.last_byte);
  EXPECT_EQ(on.link_dropped, off.link_dropped);
}

TEST(FastPathDiff, AckCoalescingKeepsStreamIntact) {
  proto::TcpConfig cfg;  // defaults: coalescing off
  const Outcome base =
      run_bulk(api::OrgType::kUserLevel, cfg, 0, 0, /*seed=*/1);
  cfg.ack_coalescing = true;
  const Outcome co = run_bulk(api::OrgType::kUserLevel, cfg, 0, 0, /*seed=*/1);
  ASSERT_TRUE(base.ok && base.data_valid);
  ASSERT_TRUE(co.ok && co.data_valid);
  // Coalescing changes the ACK schedule -- fewer pure ACKs on the wire --
  // without disturbing the delivered byte stream or causing retransmits.
  EXPECT_LT(co.pure_acks, base.pure_acks);
  EXPECT_EQ(co.retransmits, 0u);
}

}  // namespace
}  // namespace ulnet
