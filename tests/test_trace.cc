// Observability layer tests: the bounded trace ring, Chrome-JSON export,
// Metrics::delta_since coverage, tracing's zero effect on Metrics, and the
// per-connection TCP stats.
#include <gtest/gtest.h>

#include <cstring>

#include "api/testbed.h"
#include "api/workloads.h"
#include "proto/tcp.h"
#include "sim/metrics.h"
#include "sim/trace.h"
#include "support/json_lite.h"
#include "support/stack_harness.h"
#include "support/tcp_apps.h"

namespace ulnet {
namespace {

using testing::json_parse;
using testing::JsonValue;

// ---------------------------------------------------------------------------
// Metrics::delta_since
// ---------------------------------------------------------------------------

// Metrics is a plain struct of uint64 counters; treat it as an array so a
// counter added to the struct but forgotten in delta_since() fails here
// without this test changing: the new slot's delta comes out 0 (or garbage)
// instead of the patterned 7 + i.
TEST(Metrics, DeltaSinceCoversEveryCounter) {
  static_assert(sizeof(sim::Metrics) % sizeof(std::uint64_t) == 0);
  constexpr std::size_t kSlots = sizeof(sim::Metrics) / sizeof(std::uint64_t);

  sim::Metrics base;
  sim::Metrics cur;
  auto* b = reinterpret_cast<std::uint64_t*>(&base);
  auto* c = reinterpret_cast<std::uint64_t*>(&cur);
  for (std::size_t i = 0; i < kSlots; ++i) {
    b[i] = 1000 + 13 * i;
    c[i] = b[i] + 7 + i;
  }

  const sim::Metrics d = cur.delta_since(base);
  const auto* dd = reinterpret_cast<const std::uint64_t*>(&d);
  for (std::size_t i = 0; i < kSlots; ++i) {
    EXPECT_EQ(dd[i], 7 + i)
        << "counter slot " << i << " is not subtracted in delta_since()";
  }
}

// ---------------------------------------------------------------------------
// Tracer ring
// ---------------------------------------------------------------------------

sim::TraceEvent ev(sim::Time ts, std::int64_t id) {
  sim::TraceEvent e;
  e.ts = ts;
  e.type = sim::TraceEventType::kPacketTx;
  e.id = id;
  return e;
}

TEST(Tracer, DisabledRecordsNothing) {
  sim::Tracer tr(4);
  EXPECT_FALSE(tr.enabled());
  tr.record(ev(1, 1));
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.recorded_total(), 0u);
}

TEST(Tracer, RingOverflowDropsOldestKeepsNewest) {
  sim::Tracer tr(4);
  tr.set_enabled(true);
  for (std::int64_t i = 0; i < 10; ++i) {
    tr.record(ev(i, i));
  }
  EXPECT_EQ(tr.capacity(), 4u);
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.recorded_total(), 10u);
  EXPECT_EQ(tr.overwritten(), 6u);
  // Oldest retained first: events 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tr.at(i).id, static_cast<std::int64_t>(6 + i));
  }

  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
  tr.record(ev(42, 42));
  EXPECT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr.at(0).id, 42);
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  sim::Tracer tr(16);
  tr.set_enabled(true);
  sim::TraceEvent e;
  e.ts = 1234567;  // 1234.567 us
  e.type = sim::TraceEventType::kTcpState;
  e.host = 1;
  e.id = 7;
  e.detail = "ESTABLISHED";
  tr.record(e);
  e.ts = 2000000;
  e.type = sim::TraceEventType::kDemuxDrop;
  e.detail = "ring_full";
  tr.record(e);

  const auto doc = json_parse(tr.to_chrome_json());
  ASSERT_TRUE(doc.has_value()) << "export is not valid JSON";
  ASSERT_EQ(doc->type, JsonValue::Type::kObject);

  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  ASSERT_EQ(events->array.size(), 2u);

  const JsonValue& first = events->array[0];
  const JsonValue* name = first.find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->str, "tcp.state");
  const JsonValue* ph = first.find("ph");
  ASSERT_NE(ph, nullptr);
  EXPECT_EQ(ph->str, "i");  // instant event
  const JsonValue* ts = first.find("ts");
  ASSERT_NE(ts, nullptr);
  EXPECT_DOUBLE_EQ(ts->number, 1234.567);  // microseconds
  const JsonValue* args = first.find("args");
  ASSERT_NE(args, nullptr);
  const JsonValue* detail = args->find("detail");
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->str, "ESTABLISHED");

  const JsonValue* other = doc->find("otherData");
  ASSERT_NE(other, nullptr);
  const JsonValue* recorded = other->find("recorded_total");
  ASSERT_NE(recorded, nullptr);
  EXPECT_DOUBLE_EQ(recorded->number, 2.0);
}

// ---------------------------------------------------------------------------
// Tracing must not perturb the simulation
// ---------------------------------------------------------------------------

sim::Metrics bulk_metrics_delta(bool tracing) {
  api::Testbed bed(api::OrgType::kUserLevel, api::LinkType::kEthernet,
                   /*seed=*/5);
  bed.world().tracer().set_enabled(tracing);
  const sim::Metrics before = bed.world().metrics();
  api::BulkTransfer bulk(bed, 96 * 1024, 2048);
  const auto r = bulk.run();
  EXPECT_TRUE(r.ok) << r.error;
  if (tracing) {
    EXPECT_GT(bed.world().tracer().recorded_total(), 0u);
  }
  return bed.world().metrics().delta_since(before);
}

TEST(Tracer, TracingOnVsOffYieldsIdenticalMetrics) {
  const sim::Metrics off = bulk_metrics_delta(false);
  const sim::Metrics on = bulk_metrics_delta(true);
  EXPECT_EQ(std::memcmp(&off, &on, sizeof(sim::Metrics)), 0)
      << "enabling the tracer changed the simulation's mechanism counts";
}

// ---------------------------------------------------------------------------
// Per-connection TCP stats
// ---------------------------------------------------------------------------

TEST(TcpConnStats, CountsTrafficAndRetransmitsUnderForcedLoss) {
  sim::EventLoop loop;
  sim::Rng rng(7);
  testing::StackHarness a(loop, rng, net::Ipv4Addr::parse("10.0.0.1"),
                          net::MacAddr::from_index(1, 0));
  testing::StackHarness b(loop, rng, net::Ipv4Addr::parse("10.0.0.2"),
                          net::MacAddr::from_index(2, 0));
  testing::TestChannel chan(loop, rng);
  chan.attach(&a);
  chan.attach(&b);

  testing::RecordingObserver server;
  testing::RecordingObserver client;
  ASSERT_TRUE(b.stack().tcp().listen(80, &server));
  proto::TcpConnection* c = a.stack().tcp().connect(b.ip_addr(), 80, &client);
  ASSERT_NE(c, nullptr);
  loop.run_until(5 * sim::kSec);
  ASSERT_EQ(c->state(), proto::TcpState::kEstablished);
  EXPECT_GT(c->stats().state_transitions, 0u);
  EXPECT_EQ(c->stats().retransmits, 0u);

  // Force loss: blackout while a write is in flight, then heal.
  chan.loss_p = 1.0;
  const auto payload = testing::pattern_bytes(0, 4000);
  ASSERT_EQ(c->send(payload), payload.size());
  loop.run_until(loop.now() + 10 * sim::kSec);
  chan.loss_p = 0;
  loop.run_until(loop.now() + 120 * sim::kSec);

  ASSERT_EQ(server.received, payload);
  EXPECT_GE(c->stats().retransmits, 1u);
  EXPECT_GE(c->stats().timeouts, 1u);
  EXPECT_EQ(c->stats().retransmits, c->retransmit_count());
  EXPECT_GT(c->stats().segments_out, 0u);
  EXPECT_GT(c->stats().segments_in, 0u);
  EXPECT_GT(c->stats().bytes_out, payload.size())
      << "retransmissions must make bytes_out exceed the user payload";
  EXPECT_GT(c->stats().rtt_samples, 0u);
  EXPECT_GE(c->stats().snd_buf_max, payload.size());
  EXPECT_GT(c->stats().cwnd_max, 0u);

  // Receiver side attribution.
  ASSERT_NE(server.accepted_conn, nullptr);
  EXPECT_EQ(server.accepted_conn->stats().bytes_in, payload.size());
  EXPECT_GT(server.accepted_conn->stats().rcv_queue_max, 0u);

  // dump_json: well-formed, and carries the retransmit count.
  const auto conn_doc = json_parse(c->dump_json());
  ASSERT_TRUE(conn_doc.has_value()) << c->dump_json();
  const JsonValue* stats = conn_doc->find("stats");
  ASSERT_NE(stats, nullptr);
  const JsonValue* rtx = stats->find("retransmits");
  ASSERT_NE(rtx, nullptr);
  EXPECT_EQ(rtx->number, static_cast<double>(c->stats().retransmits));

  const auto mod_doc = json_parse(a.stack().tcp().dump_json());
  ASSERT_TRUE(mod_doc.has_value());
  const JsonValue* conns = mod_doc->find("connections");
  ASSERT_NE(conns, nullptr);
  ASSERT_EQ(conns->array.size(), 1u);
  const JsonValue* counters = mod_doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("retransmits"), nullptr);
}

}  // namespace
}  // namespace ulnet
