// Telemetry layer tests: the fixed-memory sample rings, the cadence floor
// rule, counter monotonicity accounting, watchdog probes, the sampler's
// zero effect on simulated behaviour, determinism of the sampled series
// across runs and executors, and the watchdog -> flight-recorder path in
// the chaos harness.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "api/chaos.h"
#include "api/fabric_bed.h"
#include "api/testbed.h"
#include "api/workloads.h"
#include "os/world.h"
#include "sim/metrics.h"
#include "sim/telemetry.h"

namespace ulnet {
namespace {

sim::TelemetryConfig small_cfg(sim::Time cadence, std::size_t ring) {
  sim::TelemetryConfig cfg;
  cfg.cadence = cadence;
  cfg.ring_capacity = ring;
  return cfg;
}

// ---------------------------------------------------------------------------
// Ring buffer semantics
// ---------------------------------------------------------------------------

TEST(Telemetry, RingOverflowKeepsNewestAndCountsDrops) {
  sim::Telemetry t;
  t.configure(small_cfg(1, 4));
  t.set_enabled(true);
  std::uint64_t v = 0;
  t.register_counter("c", &v);

  for (sim::Time at = 1; at <= 10; ++at) {
    v = static_cast<std::uint64_t>(at) * 100;
    t.sample_now(at);
  }

  const sim::Telemetry::Series* s = t.find("c");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->samples, 10u);
  EXPECT_EQ(s->count, 4u);
  EXPECT_EQ(s->dropped, 6u);  // oldest evicted, accounted for
  // The retained tail is the newest four points, in time order.
  for (std::size_t i = 0; i < s->count; ++i) {
    EXPECT_EQ(s->point(i).t, static_cast<sim::Time>(7 + i));
    EXPECT_EQ(s->point(i).v, (7 + i) * 100u);
  }
  EXPECT_EQ(s->last, 1000u);
  EXPECT_EQ(s->max, 1000u);
  EXPECT_EQ(s->monotone_violations, 0u);
}

TEST(Telemetry, CadenceFloorRuleSamplesAtMostOncePerInterval) {
  sim::Telemetry t;
  t.configure(small_cfg(10, 64));
  t.set_enabled(true);
  std::uint64_t v = 0;
  t.register_counter("c", &v);

  // A burst of due-checks inside one cadence interval takes one sample.
  t.sample_if_due(0);
  t.sample_if_due(3);
  t.sample_if_due(9);
  EXPECT_EQ(t.samples_taken(), 1u);
  // Sample times are event times: crossing into a later interval samples
  // once at the crossing event, no catch-up for skipped intervals.
  t.sample_if_due(12);
  t.sample_if_due(19);
  EXPECT_EQ(t.samples_taken(), 2u);
  t.sample_if_due(47);
  EXPECT_EQ(t.samples_taken(), 3u);

  const sim::Telemetry::Series* s = t.find("c");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->count, 3u);
  EXPECT_EQ(s->point(0).t, 0);
  EXPECT_EQ(s->point(1).t, 12);
  EXPECT_EQ(s->point(2).t, 47);
}

TEST(Telemetry, CounterDecreaseCountsMonotoneViolation) {
  sim::Telemetry t;
  t.configure(small_cfg(1, 8));
  t.set_enabled(true);
  std::uint64_t v = 5;
  t.register_counter("c", &v);
  t.sample_now(1);
  v = 3;  // a counter must never do this
  t.sample_now(2);
  const sim::Telemetry::Series* s = t.find("c");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->monotone_violations, 1u);
}

TEST(Telemetry, DisabledSamplerNeverCallsProbes) {
  sim::Telemetry t;
  t.configure(small_cfg(1, 8));
  int calls = 0;
  t.register_gauge("g", [&calls] {
    ++calls;
    return 0ULL;
  });
  t.sample_if_due(100);
  t.sample_if_due(200);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(t.samples_taken(), 0u);
}

// ---------------------------------------------------------------------------
// Watchdog probes
// ---------------------------------------------------------------------------

TEST(Telemetry, NoProgressProbeFiresOnceAfterWindow) {
  sim::Telemetry t;
  t.configure(small_cfg(1, 64));
  t.set_enabled(true);
  std::uint64_t v = 7;
  t.register_counter("c", &v);
  t.add_no_progress_probe("stuck", "c", 10);
  std::vector<std::string> fired;
  t.set_watchdog_handler(
      [&fired](const std::string& name, const std::string&, sim::Time) {
        fired.push_back(name);
      });

  for (sim::Time at = 1; at <= 30; ++at) t.sample_now(at);
  EXPECT_EQ(t.watchdog_triggers(), 1u);  // one-shot, despite 20 stuck samples
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "stuck");
  EXPECT_NE(t.watchdog_reason().find("stuck at 7"), std::string::npos)
      << t.watchdog_reason();
}

TEST(Telemetry, NoProgressProbeStaysQuietWhileValueMoves) {
  sim::Telemetry t;
  t.configure(small_cfg(1, 64));
  t.set_enabled(true);
  std::uint64_t v = 0;
  t.register_counter("c", &v);
  t.add_no_progress_probe("stuck", "c", 10);
  for (sim::Time at = 1; at <= 30; ++at) {
    v = static_cast<std::uint64_t>(at);  // always progressing
    t.sample_now(at);
  }
  EXPECT_EQ(t.watchdog_triggers(), 0u);
}

TEST(Telemetry, MonotoneGrowthProbeFiresAfterKStrictIncreases) {
  sim::Telemetry t;
  t.configure(small_cfg(1, 64));
  t.set_enabled(true);
  std::uint64_t v = 0;
  t.register_gauge("depth", [&v] { return v; });
  t.add_monotone_growth_probe("runaway", "depth", 5);

  // A plateau resets the run: 4 increases, flat, 4 increases -> no fire.
  for (int i = 1; i <= 4; ++i) {
    v += 1;
    t.sample_now(i);
  }
  t.sample_now(5);  // flat
  for (int i = 6; i <= 9; ++i) {
    v += 1;
    t.sample_now(i);
  }
  EXPECT_EQ(t.watchdog_triggers(), 0u);
  // The fifth consecutive strict increase fires.
  for (int i = 10; i <= 11; ++i) {
    v += 1;
    t.sample_now(i);
  }
  EXPECT_EQ(t.watchdog_triggers(), 1u);
}

// ---------------------------------------------------------------------------
// The sampler must not perturb the simulation
// ---------------------------------------------------------------------------

sim::Metrics bulk_metrics_delta_telemetry(bool telemetry) {
  api::Testbed bed(api::OrgType::kUserLevel, api::LinkType::kEthernet,
                   /*seed=*/5);
  if (telemetry) bed.world().enable_telemetry(sim::TelemetryConfig{});
  const sim::Metrics before = bed.world().metrics();
  api::BulkTransfer bulk(bed, 96 * 1024, 2048);
  const auto r = bulk.run();
  EXPECT_TRUE(r.ok) << r.error;
  if (telemetry) {
    EXPECT_GT(bed.world().telemetry().samples_taken(), 0u);
  }
  return bed.world().metrics().delta_since(before);
}

// Mirror of Tracer.TracingOnVsOffYieldsIdenticalMetrics: the tick-hook
// sampler observes between events and never schedules, so every mechanism
// count -- including events_executed and timer occupancy -- is identical
// with telemetry on and off.
TEST(Telemetry, TelemetryOnVsOffYieldsIdenticalMetrics) {
  const sim::Metrics off = bulk_metrics_delta_telemetry(false);
  const sim::Metrics on = bulk_metrics_delta_telemetry(true);
  EXPECT_EQ(std::memcmp(&off, &on, sizeof(sim::Metrics)), 0)
      << "enabling telemetry changed the simulation's mechanism counts";
}

TEST(Telemetry, SameSeedYieldsIdenticalSeries) {
  auto run = [] {
    api::Testbed bed(api::OrgType::kUserLevel, api::LinkType::kEthernet,
                     /*seed=*/9);
    bed.world().enable_telemetry(sim::TelemetryConfig{});
    api::BulkTransfer bulk(bed, 96 * 1024, 2048);
    const auto r = bulk.run();
    EXPECT_TRUE(r.ok) << r.error;
    return bed.world().telemetry().dump_jsonl();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// The partitioned executors sample at window barriers, which every
// executor visits in the same order -- so the simulated series (wallclock
// ones excluded) are bit-identical between the sharded-serial reference
// and the partitioned executor at any thread count.
TEST(Telemetry, SerialAndPartitionedExecutorsYieldIdenticalSeries) {
  api::FabricConfig cfg;
  cfg.pairs = 2;
  cfg.conns_per_pair = 4;
  cfg.bytes_per_conn = 2048;
  cfg.telemetry_cadence = 5 * sim::kMs;

  api::FabricBed serial(os::PartitionMode::kShardedSerial, cfg);
  ASSERT_TRUE(serial.run());
  api::FabricBed par(os::PartitionMode::kPartitioned, cfg);
  ASSERT_TRUE(par.run(2));

  ASSERT_EQ(serial.fingerprint(), par.fingerprint());
  const std::string a = serial.telemetry().dump_jsonl(false);
  const std::string b = par.telemetry().dump_jsonl(false);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The executor instrumentation saw real windows on both executors.
  const sim::Telemetry::Series* w = par.telemetry().find("exec.windows");
  ASSERT_NE(w, nullptr);
  EXPECT_GT(w->last, 0u);
}

// ---------------------------------------------------------------------------
// Watchdog -> flight recorder, end to end
// ---------------------------------------------------------------------------

// Under the canonical chaos schedule the victim's library is killed
// mid-stream, so the sampled `victim.peer_rcvd` series goes flat and the
// no-progress probe must fire mid-run, dumping the postmortem bundle
// (including the sampled series) without waiting for teardown.
TEST(ChaosWatchdog, NoProgressProbeTriggersFlightRecorder) {
  const std::string dir = ::testing::TempDir() + "ulnet_watchdog_pm";
  std::filesystem::remove_all(dir);

  api::ChaosScenarioConfig cfg;
  cfg.seed = 3;
  cfg.bulk_bytes = 1024 * 1024;
  cfg.postmortem_dir = dir;
  cfg.telemetry_cadence = 10 * sim::kMs;
  cfg.watchdog_no_progress = 500 * sim::kMs;
  const api::ChaosReport rep = api::run_chaos_scenario(cfg);

  // The run itself is healthy -- the watchdog observing the victim's death
  // is diagnostic, not an invariant failure.
  EXPECT_TRUE(rep.invariants_ok()) << rep.failure();
  EXPECT_GE(rep.watchdog_triggers, 1u);
  EXPECT_FALSE(rep.watchdog_reason.empty());
  EXPECT_NE(rep.watchdog_reason.find("victim.peer_rcvd"), std::string::npos)
      << rep.watchdog_reason;

  // The bundle was written when the probe fired, telemetry series included.
  EXPECT_TRUE(std::filesystem::exists(dir + "/failure.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/metrics.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/telemetry.jsonl"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/telemetry.prom"));
  EXPECT_GT(std::filesystem::file_size(dir + "/telemetry.jsonl"), 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Export formats
// ---------------------------------------------------------------------------

TEST(Telemetry, DumpJsonlCarriesSchemaAndFiltersWallclock) {
  sim::Telemetry t;
  t.configure(small_cfg(1, 8));
  t.set_enabled(true);
  std::uint64_t v = 1;
  t.register_counter("sim_series", &v);
  t.register_counter("host_series", [] { return 42ULL; }, "ns",
                     /*wallclock=*/true);
  t.sample_now(1);

  const std::string all = t.dump_jsonl();
  EXPECT_NE(all.find("\"name\":\"sim_series\""), std::string::npos);
  EXPECT_NE(all.find("\"name\":\"host_series\""), std::string::npos);
  EXPECT_NE(all.find("\"cadence_ns\":1"), std::string::npos);
  EXPECT_NE(all.find("\"points\":[[1,1]]"), std::string::npos);

  const std::string deterministic = t.dump_jsonl(false);
  EXPECT_NE(deterministic.find("sim_series"), std::string::npos);
  EXPECT_EQ(deterministic.find("host_series"), std::string::npos);
}

TEST(Telemetry, DumpPrometheusExposesLatestValues) {
  sim::Telemetry t;
  t.configure(small_cfg(1, 8));
  t.set_enabled(true);
  std::uint64_t v = 123;
  t.register_counter("loop.executed", &v);
  t.sample_now(1);
  const std::string prom = t.dump_prometheus();
  EXPECT_NE(prom.find("# TYPE ulnet_loop_executed counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("123"), std::string::npos);
}

// The registry's handshake-sweep counter is mirrored into the world-level
// metrics (and so into every metrics.json artifact) for the telemetry and
// watchdog layers to observe.
TEST(Telemetry, MetricsDumpCarriesRegistrySweepMirror) {
  sim::Metrics m;
  m.registry_handshake_sweeps = 5;
  const std::string js = m.dump_json();
  EXPECT_NE(js.find("\"registry_handshake_sweeps\":5"), std::string::npos)
      << js;
}

}  // namespace
}  // namespace ulnet
