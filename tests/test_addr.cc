#include "net/addr.h"

#include <gtest/gtest.h>

namespace ulnet::net {
namespace {

TEST(MacAddr, ToString) {
  MacAddr m{{0x02, 0x00, 0x5e, 0x00, 0x01, 0x00}};
  EXPECT_EQ(m.to_string(), "02:00:5e:00:01:00");
}

TEST(MacAddr, Broadcast) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddr::from_index(1, 0).is_broadcast());
}

TEST(MacAddr, FromIndexUnique) {
  EXPECT_NE(MacAddr::from_index(1, 0), MacAddr::from_index(2, 0));
  EXPECT_NE(MacAddr::from_index(1, 0), MacAddr::from_index(1, 1));
  EXPECT_EQ(MacAddr::from_index(7, 3), MacAddr::from_index(7, 3));
}

TEST(Ipv4Addr, ParseAndFormatRoundTrip) {
  auto a = Ipv4Addr::parse("192.168.1.42");
  EXPECT_EQ(a.to_string(), "192.168.1.42");
  EXPECT_EQ(a, Ipv4Addr::from_octets(192, 168, 1, 42));
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_THROW(Ipv4Addr::parse("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3.4x"), std::invalid_argument);
}

TEST(Ipv4Addr, SameSubnet) {
  auto a = Ipv4Addr::parse("10.0.1.5");
  auto b = Ipv4Addr::parse("10.0.1.200");
  auto c = Ipv4Addr::parse("10.0.2.5");
  EXPECT_TRUE(same_subnet(a, b, 24));
  EXPECT_FALSE(same_subnet(a, c, 24));
  EXPECT_TRUE(same_subnet(a, c, 16));
  EXPECT_TRUE(same_subnet(a, c, 0));
  EXPECT_FALSE(same_subnet(a, b, 32));
  EXPECT_TRUE(same_subnet(a, a, 32));
}

}  // namespace
}  // namespace ulnet::net
