// Motivation bench (paper Section 1.1): why multiple transports co-exist.
//
// "Experience with specialized protocols shows that they achieve remarkably
// low latencies. However these protocols do not always deliver the highest
// throughput. In systems that need to support both throughput-intensive and
// latency-critical applications, it is realistic to expect both types of
// protocols to co-exist."
//
// Measured here with the two transports this library ships: RRP (the
// VMTP-style request/response protocol) vs TCP, on the same stack, host
// pair and wire:
//   * RPC latency: one 64-byte transaction (RRP needs no connection setup
//     and no ACKs; TCP needs the handshake once, then data+echo+ACKs),
//   * bulk throughput: 512 KB (TCP streams a window; RRP is stop-and-wait
//     per transaction).
#include <cstdio>

#include "api/workloads.h"
#include "baseline/inkernel.h"
#include "bench/bench_util.h"
#include "os/world.h"

using namespace ulnet;

namespace {

struct Pair {
  os::World world;
  os::Host& ha;
  os::Host& hb;
  baseline::InKernelOrg* org_a = nullptr;
  baseline::InKernelOrg* org_b = nullptr;
  net::Ipv4Addr ip_b = net::Ipv4Addr::parse("10.0.0.2");

  Pair() : ha(world.add_host("a")), hb(world.add_host("b")) {
    auto& wire = world.add_ethernet();
    world.attach_lance(ha, wire, net::Ipv4Addr::parse("10.0.0.1"));
    world.attach_lance(hb, wire, ip_b);
    org_a = new baseline::InKernelOrg(world, ha);
    org_b = new baseline::InKernelOrg(world, hb);
  }
  ~Pair() {
    delete org_a;
    delete org_b;
  }
};

double rrp_rpc_us(int rounds) {
  Pair p;
  p.org_b->stack().rrp().serve(99, [](net::Ipv4Addr, buf::ByteView req) {
    return buf::Bytes(req.begin(), req.end());
  });
  sim::Stats rtts;
  auto issue = std::make_shared<std::function<void()>>();
  auto left = std::make_shared<int>(rounds);
  *issue = [&p, issue, left, &rtts] {
    const sim::Time t0 = p.world.now();
    p.ha.run_in(sim::kKernelSpace, [&p, issue, left, &rtts, t0](sim::TaskCtx&) {
      p.org_a->stack().rrp().request(
          p.ip_b, 99, buf::Bytes(64, 1),
          [&p, issue, left, &rtts, t0](std::optional<buf::Bytes> r) {
            if (r) rtts.add(sim::to_us(p.world.now() - t0));
            if (--*left > 0) (*issue)();
          });
    });
  };
  p.world.loop().schedule_in(10 * sim::kMs, [issue] { (*issue)(); });
  p.world.run_until(120 * sim::kSec);
  return rtts.empty() ? -1 : rtts.mean();
}

double rrp_bulk_mbps(std::size_t total, std::size_t msg) {
  Pair p;
  p.org_b->stack().rrp().serve(99, [](net::Ipv4Addr, buf::ByteView) {
    return buf::Bytes{1};  // tiny ack-like response
  });
  auto moved = std::make_shared<std::size_t>(0);
  sim::Time first = 0, last = 0;
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&, moved, issue] {
    p.ha.run_in(sim::kKernelSpace, [&, moved, issue](sim::TaskCtx&) {
      p.org_a->stack().rrp().request(
          p.ip_b, 99, buf::Bytes(msg, 7),
          [&, moved, issue](std::optional<buf::Bytes> r) {
            if (!r) return;
            if (*moved == 0) first = p.world.now();
            *moved += msg;
            last = p.world.now();
            if (*moved < total) (*issue)();
          });
    });
  };
  p.world.loop().schedule_in(10 * sim::kMs, [issue] { (*issue)(); });
  p.world.run_until(600 * sim::kSec);
  if (last <= first || *moved < msg * 2) return -1;
  return static_cast<double>(*moved - msg) * 8.0 / sim::to_sec(last - first) /
         1e6;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "bench_motivation_protocols",
                           "Section 1.1");
  bench::heading(
      "Motivation: request/response vs byte-stream transports (in-kernel "
      "stack, Ethernet)");

  const double rrp_rtt = rrp_rpc_us(50);

  double tcp_rtt;
  {
    api::Testbed bed(api::OrgType::kInKernel, api::LinkType::kEthernet);
    api::PingPong pp(bed, 64, 50);
    tcp_rtt = pp.run_mean_rtt_us();
  }
  double tcp_bulk;
  {
    api::Testbed bed(api::OrgType::kInKernel, api::LinkType::kEthernet);
    api::BulkTransfer bulk(bed, 512 * 1024, 4096);
    tcp_bulk = bulk.run().throughput_mbps();
  }
  const double rrp_bulk = rrp_bulk_mbps(512 * 1024, 16 * 1024);

  std::printf("%-44s %10s %10s\n", "", "RRP", "TCP");
  std::printf("%-44s %8.0f us %8.0f us\n", "64-byte RPC (established path)",
              rrp_rtt, tcp_rtt);
  std::printf("%-44s %7.2f Mb/s %6.2f Mb/s\n",
              "512 KB bulk (16 KB RRP msgs vs TCP stream)", rrp_bulk,
              tcp_bulk);

  std::printf(
      "\nThe paper's premise reproduces: the transaction protocol wins"
      "\nlatency (no setup, no ACK machinery on the critical path) while"
      "\nthe windowed byte stream wins throughput (it keeps the wire full"
      "\ninstead of stopping-and-waiting per message) -- hence both must"
      "\nco-exist, and separate user-level libraries make that cheap.\n");

  report.add("RRP", "rpc_latency", "us", rrp_rtt);
  report.add("TCP", "rpc_latency", "us", tcp_rtt);
  report.add("RRP", "bulk_throughput", "Mb/s", rrp_bulk);
  report.add("TCP", "bulk_throughput", "Mb/s", tcp_bulk);
  return report.write() ? 0 : 1;
}
