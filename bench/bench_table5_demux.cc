// Table 5 -- "Hardware/Software Demultiplexing Tradeoffs".
//
// Execution time to demultiplex one incoming packet:
//   * Lance Ethernet: software demux in the kernel (synthesized matcher +
//     binding table) -- paper: 52 us;
//   * AN1: hardware BQI -- only the device-management code inherent to the
//     BQI machinery costs host time -- paper: 50 us.
// Copy and DMA costs are excluded, as in the paper.
//
// The bench measures the cost on the live receive path: it instruments the
// ISR task accounting of a real transfer with and without the demux stage's
// cost term, then also reports the interpreted-filter alternatives (CSPF,
// BPF) whose per-instruction costs explain why "slow packet demultiplexing
// tends to confine user-level protocol implementations to debugging".
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"
#include "filter/filter.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

// Average demux cost per received packet, measured as the difference in
// total receiver-CPU time between a run with the demux cost term enabled
// and one with it set to zero, divided by packets received.
double measured_software_demux_us() {
  auto run_busy = [](sim::Time demux_cost) {
    sim::CostModel cm;
    cm.demux_software = demux_cost;
    Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, 1, cm);
    BulkTransfer bulk(bed, 256 * 1024, 4096);
    auto r = bulk.run();
    if (!r.ok) return std::pair<double, double>{0, 1};
    // Demux runs on both hosts (data packets at B, ACKs at A): difference
    // the total CPU time of both against the total run count.
    const double busy = sim::to_us(bed.host_a().cpu().busy_ns() +
                                   bed.host_b().cpu().busy_ns());
    const double pkts = static_cast<double>(
        bed.world().metrics().demux_software_runs);
    return std::pair<double, double>{busy, pkts};
  };
  const sim::CostModel def;
  auto [busy_with, pkts] = run_busy(def.demux_software);
  auto [busy_without, pkts2] = run_busy(0);
  (void)pkts2;
  return (busy_with - busy_without) / ((pkts + pkts2) / 2.0);
}

double measured_hardware_demux_us() {
  auto run_busy = [](sim::Time mgmt_cost) {
    sim::CostModel cm;
    cm.demux_hardware_mgmt = mgmt_cost;
    Testbed bed(OrgType::kUserLevel, LinkType::kAn1, 1, cm);
    BulkTransfer bulk(bed, 256 * 1024, 4096);
    auto r = bulk.run();
    if (!r.ok) return std::pair<double, double>{0, 1};
    const double busy = sim::to_us(bed.host_a().cpu().busy_ns() +
                                   bed.host_b().cpu().busy_ns());
    const double pkts =
        static_cast<double>(bed.world().metrics().demux_hardware_runs);
    return std::pair<double, double>{busy, pkts};
  };
  const sim::CostModel def;
  auto [busy_with, pkts] = run_busy(def.demux_hardware_mgmt);
  auto [busy_without, pkts2] = run_busy(0);
  (void)pkts2;
  return (busy_with - busy_without) / ((pkts + pkts2) / 2.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "bench_table5_demux", "Table 5");
  bench::heading("Table 5: hardware/software demultiplexing tradeoffs");

  const double sw = measured_software_demux_us();
  const double hwd = measured_hardware_demux_us();
  std::printf("%-44s %7.1f us   (paper 52)\n",
              "Lance Ethernet (software, synthesized)", sw);
  std::printf("%-44s %7.1f us   (paper 50)\n", "AN1 (hardware BQI)", hwd);
  report.add("Lance Ethernet (software, synthesized)", "demux_cost", "us", sw,
             52);
  report.add("AN1 (hardware BQI)", "demux_cost", "us", hwd, 50);

  // ---- Interpreted-filter alternatives (the Section 2.2 argument) ----
  bench::heading("Interpreted filters per packet (one binding)");
  filter::FlowKey key;
  key.ethertype = net::kEtherTypeIp;
  key.ip_proto = proto::kProtoTcp;
  key.local_ip = 0x0a000002;
  key.local_port = 5001;
  key.remote_ip = 0x0a000001;
  key.remote_port = 20000;

  // A matching TCP/IP packet behind a 14-byte Ethernet header.
  buf::Bytes pkt;
  for (int i = 0; i < 12; ++i) buf::put8(pkt, 0);
  buf::put16(pkt, net::kEtherTypeIp);
  proto::Ipv4Header ih;
  ih.total_len = 40;
  ih.proto = proto::kProtoTcp;
  ih.src = net::Ipv4Addr{key.remote_ip};
  ih.dst = net::Ipv4Addr{key.local_ip};
  ih.serialize(pkt);
  proto::TcpHeader th;
  th.sport = key.remote_port;
  th.dport = key.local_port;
  th.serialize(pkt, ih.src, ih.dst, {});

  const sim::CostModel cm;
  filter::CspfVm cspf(filter::build_cspf_flow_filter(key, 14, 12));
  filter::BpfVm bpf(filter::build_bpf_flow_filter(key, 14, 12));
  filter::SynthesizedMatcher synth(key, 14);

  const auto rc = cspf.run(pkt);
  const auto rb = bpf.run(pkt);
  const auto rs = synth.run(pkt);
  std::printf("%-30s %4d insns x %5.1f us = %7.1f us\n",
              "CSPF stack interpreter", rc.instructions,
              sim::to_us(cm.filter_interp_per_insn),
              rc.instructions * sim::to_us(cm.filter_interp_per_insn));
  std::printf("%-30s %4d insns x %5.1f us = %7.1f us\n",
              "BPF register machine", rb.instructions,
              sim::to_us(cm.filter_bpf_per_insn),
              rb.instructions * sim::to_us(cm.filter_bpf_per_insn));
  std::printf("%-30s %4d insns (synthesized in kernel, Table 5 cost above)\n",
              "Synthesized matcher", rs.instructions);
  std::printf(
      "\nShape check: hardware and software demux cost about the same"
      "\n(~50 us) -- 'there is no significant difference in the timing' --"
      "\nwhile a CSPF-style interpreter is several times more expensive.\n");

  report.add("CSPF stack interpreter", "filter_cost", "us",
             rc.instructions * sim::to_us(cm.filter_interp_per_insn),
             std::nullopt,
             {{"instructions", static_cast<double>(rc.instructions)}});
  report.add("BPF register machine", "filter_cost", "us",
             rb.instructions * sim::to_us(cm.filter_bpf_per_insn),
             std::nullopt,
             {{"instructions", static_cast<double>(rb.instructions)}});
  return report.write() ? 0 : 1;
}
