// Partitioned-simulation scale-out bench: a fabric of host pairs, each
// pair carrying hundreds of concurrent TCP connections through the full
// user-level organization, executed twice per grid cell --
//
//   1. on the kShardedSerial reference executor (one global loop run
//      through the window/mailbox machinery), and
//   2. on the kPartitioned executor with --threads N worker threads under
//      conservative (Chandy-Misra-Bryant style) window synchronization,
//
// and differentially compared: the two runs' fingerprints (aggregate
// metrics JSON, every per-host TCP counter block, per-pair transfer
// tallies) must be bit-identical, exported as the exact-gated
// `fingerprint_mismatch` row (a ZERO_METRICS invariant -- nonzero is a
// broken run regardless of baseline). Simulated rows (connection counts,
// concurrency peak, event counts, registry sweep counters, rehash/regrow
// zero-counters) are exact-gated; wall-clock rows (serial/parallel times
// and their speedup ratio) use the tolerance band.
//
// The grid tops out at 16 pairs x 640 connections = 10240 concurrent
// connections, the scale-out exhibit: the `conns_peak` row proves every
// one of them was established at the same simulated instant.
//
// Wall-clock speedup depends on the host: the >= 2x assertion only arms
// when the machine has at least 4 hardware threads (a single-core host can
// prove determinism, not parallel speedup -- the bench says which it did).
//
// `--telemetry` arms the live time-series sampler on both executors of
// every cell: executor series (windows, lookahead, mailbox depth,
// per-worker busy/stall wallclock), event-loop and pool series. The
// simulated series are sampled at window barriers, so serial and
// partitioned runs must produce bit-identical series -- exported as the
// exact-gated `telemetry_series_mismatch` row -- and the first cell's
// series land in the JSON as `series.<name>` row groups.
//
// Usage: bench_scale_fabric [--quick] [--threads N] [--json <path>]
//                           [--telemetry] [--telemetry-jsonl <path>]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/fabric_bed.h"
#include "bench/bench_util.h"
#include "os/world.h"
#include "sim/time.h"

namespace {

namespace sim = ulnet::sim;
namespace bench = ulnet::bench;
using ulnet::api::FabricBed;
using ulnet::api::FabricConfig;
using ulnet::os::PartitionMode;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct CellResult {
  bool ok = false;
  bool fingerprints_match = false;
  int conns = 0;
  int peak = 0;
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t rehashes = 0;
  std::uint64_t regrows = 0;
  std::size_t pool_peak = 0;
  std::size_t tcb_peak = 0;
  double serial_ms = 0;
  double parallel_ms = 0;
  double speedup = 0;
  bool telemetry_on = false;
  bool telemetry_match = true;
};

CellResult run_cell(int pairs, int conns_per_pair, int threads,
                    bool telemetry, bench::JsonReport* series_report,
                    std::string* jsonl_out) {
  FabricConfig cfg;
  cfg.pairs = pairs;
  cfg.conns_per_pair = conns_per_pair;
  cfg.bytes_per_conn = 4096;
  cfg.seed = 1;
  if (telemetry) cfg.telemetry_cadence = 10 * sim::kMs;

  CellResult r;
  r.conns = pairs * conns_per_pair;
  r.telemetry_on = telemetry;

  auto t0 = Clock::now();
  FabricBed serial(PartitionMode::kShardedSerial, cfg);
  const bool ok_serial = serial.run();
  r.serial_ms = ms_since(t0);

  t0 = Clock::now();
  FabricBed par(PartitionMode::kPartitioned, cfg);
  const bool ok_par = par.run(threads);
  r.parallel_ms = ms_since(t0);

  r.ok = ok_serial && ok_par;
  r.fingerprints_match = serial.fingerprint() == par.fingerprint() &&
                         serial.events_executed() == par.events_executed();
  if (telemetry) {
    // Simulated series are sampled at window barriers, which both
    // executors visit in the same order -- the series must agree bit for
    // bit. Wallclock series (busy/stall) are excluded by dump_jsonl(false).
    r.telemetry_match = serial.telemetry().dump_jsonl(false) ==
                        par.telemetry().dump_jsonl(false);
    if (series_report != nullptr) {
      bench::add_telemetry(*series_report, par.telemetry());
    }
    if (jsonl_out != nullptr) *jsonl_out = par.telemetry().dump_jsonl();
  }
  r.peak = par.peak_established();
  r.bytes = static_cast<std::uint64_t>(cfg.bytes_per_conn) *
            static_cast<std::uint64_t>(r.conns);
  r.events = par.events_executed();
  r.sweeps = par.handshake_sweeps();
  const sim::Metrics m = par.metrics();
  r.rehashes = m.demux_table_rehashes;
  r.regrows = m.loan_table_regrows;
  r.pool_peak = par.peak_pool_bytes();
  r.tcb_peak = par.peak_tcb_bytes();
  r.speedup = r.parallel_ms > 0 ? r.serial_ms / r.parallel_ms : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int threads = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) threads = 1;
    }
  }
  bench::JsonReport report(argc, argv, "bench_scale_fabric",
                           "Partitioned scale-out");
  const bench::TelemetryArgs targs(argc, argv);
  bool all_ok = true;

  struct Cell {
    int pairs;
    int conns_per_pair;
    bool in_quick;
  };
  const std::vector<Cell> grid = {
      {2, 32, true},     // 64 conns: smoke
      {4, 128, false},   // 512 conns
      {8, 256, false},   // 2048 conns
      {16, 640, false},  // 10240 conns: the scale-out exhibit
  };

  bench::heading("Partitioned scale-out: serial reference vs --threads " +
                 std::to_string(threads));
  bench::row_header({"grid", "conns / peak", "serial / parallel", "speedup"});

  double top_speedup = 0;
  int top_peak = 0;
  bool series_emitted = false;
  std::string telemetry_jsonl;
  for (const Cell& c : grid) {
    if (quick && !c.in_quick) continue;
    // The series row-group labels are cell-independent, so only the first
    // telemetry cell exports them (and the JSONL artifact); every cell
    // still gets the series-identity row below.
    const bool emit_series = targs.enabled && !series_emitted;
    const CellResult r =
        run_cell(c.pairs, c.conns_per_pair, threads, targs.enabled,
                 emit_series ? &report : nullptr,
                 emit_series ? &telemetry_jsonl : nullptr);
    series_emitted = series_emitted || emit_series;
    all_ok = all_ok && r.ok;
    char label[48];
    std::snprintf(label, sizeof label, "grid/p%d/c%d", c.pairs,
                  c.conns_per_pair);
    char col1[48], col2[64];
    std::snprintf(col1, sizeof col1, "%d / %d", r.conns, r.peak);
    std::snprintf(col2, sizeof col2, "%.0f ms / %.0f ms", r.serial_ms,
                  r.parallel_ms);
    std::printf("%-34s%-34s%-34s%-34s\n", label, col1, col2,
                bench::cellf("%.2fx", r.speedup).c_str());

    if (!r.fingerprints_match) {
      std::printf("FAIL: %s serial and partitioned runs diverged\n", label);
      all_ok = false;
    }
    if (r.telemetry_on && !r.telemetry_match) {
      std::printf("FAIL: %s serial and partitioned telemetry series "
                  "diverged\n", label);
      all_ok = false;
    }
    if (r.peak != r.conns) {
      std::printf("FAIL: %s concurrency peak %d never reached %d\n", label,
                  r.peak, r.conns);
      all_ok = false;
    }
    top_speedup = std::max(top_speedup, r.speedup);
    top_peak = std::max(top_peak, r.peak);

    const std::vector<std::pair<std::string, double>> params = {
        {"pairs", static_cast<double>(c.pairs)},
        {"conns_per_pair", static_cast<double>(c.conns_per_pair)},
        {"threads", static_cast<double>(threads)},
    };
    report.add(label, "conns", "count", static_cast<double>(r.conns),
               std::nullopt, params, "simulated");
    report.add(label, "conns_peak", "count", static_cast<double>(r.peak),
               std::nullopt, params, "simulated");
    report.add(label, "bytes_received", "bytes",
               static_cast<double>(r.bytes), std::nullopt, params,
               "simulated");
    report.add(label, "events", "count", static_cast<double>(r.events),
               std::nullopt, params, "simulated");
    report.add(label, "fingerprint_mismatch", "count",
               r.fingerprints_match ? 0.0 : 1.0, std::nullopt, params,
               "simulated");
    if (r.telemetry_on) {
      report.add(label, "telemetry_series_mismatch", "count",
                 r.telemetry_match ? 0.0 : 1.0, std::nullopt, params,
                 "simulated");
    }
    report.add(label, "handshake_sweeps", "count",
               static_cast<double>(r.sweeps), std::nullopt, params,
               "simulated");
    report.add(label, "demux_table_rehashes", "count",
               static_cast<double>(r.rehashes), std::nullopt, params,
               "simulated");
    report.add(label, "loan_table_regrows", "count",
               static_cast<double>(r.regrows), std::nullopt, params,
               "simulated");
    {
      std::vector<std::pair<std::string, double>> wparams = params;
      wparams.emplace_back("higher_is_better", 0.0);
      report.add(label, "serial_ms", "ms", r.serial_ms, std::nullopt,
                 wparams, "wallclock");
      report.add(label, "parallel_ms", "ms", r.parallel_ms, std::nullopt,
                 wparams, "wallclock");
      report.add(label, "pool_bytes_peak", "bytes",
                 static_cast<double>(r.pool_peak), std::nullopt, wparams,
                 "wallclock");
      report.add(label, "tcb_bytes_peak", "bytes",
                 static_cast<double>(r.tcb_peak), std::nullopt, wparams,
                 "wallclock");
      report.add(label, "tcb_bytes_per_conn", "bytes",
                 r.conns > 0 ? static_cast<double>(r.tcb_peak) / r.conns : 0,
                 std::nullopt, wparams, "wallclock");
    }
    {
      std::vector<std::pair<std::string, double>> wparams = params;
      wparams.emplace_back("higher_is_better", 1.0);
      report.add(label, "speedup", "ratio", r.speedup, std::nullopt,
                 wparams, "wallclock");
    }
  }

  // Self-describing configuration row.
  {
    FabricConfig defaults;
    const std::vector<std::pair<std::string, double>> params = {
        {"threads", static_cast<double>(threads)},
    };
    report.add("cfg/fabric", "propagation_us", "us",
               static_cast<double>(defaults.propagation) / sim::kUs,
               std::nullopt, params, "simulated");
    report.add("cfg/fabric", "bytes_per_conn", "bytes", 4096.0, std::nullopt,
               params, "simulated");
    report.add("cfg/fabric", "hardware_threads", "count",
               static_cast<double>(std::thread::hardware_concurrency()),
               std::nullopt, params, "wallclock");
  }

  // The scale-out acceptance claims. Determinism (fingerprint identity) is
  // hardware-independent and always enforced above. The >= 10k concurrency
  // exhibit needs the full grid; the >= 2x wall-clock speedup additionally
  // needs real parallel hardware.
  const unsigned hw = std::thread::hardware_concurrency();
  if (!quick) {
    if (top_peak < 10240) {
      std::printf("FAIL: peak concurrency %d never reached 10240\n",
                  top_peak);
      all_ok = false;
    }
    if (hw >= 4 && threads >= 4) {
      if (top_speedup < 2.0) {
        std::printf("FAIL: best speedup %.2fx < 2x on a %u-thread host\n",
                    top_speedup, hw);
        all_ok = false;
      }
    } else {
      std::printf(
          "note: speedup assertion skipped (%u hardware threads, --threads "
          "%d); determinism was still verified at this thread count\n",
          hw, threads);
    }
  }

  if (!report.write()) return 1;
  if (!targs.write_jsonl(telemetry_jsonl)) return 1;
  if (!all_ok) {
    std::printf("\nbench_scale_fabric: FAILURES (see above)\n");
    return 1;
  }
  std::printf("\nbench_scale_fabric: all runs completed, executors agree\n");
  return 0;
}
