// Ablation: batched semaphore notification (paper Section 3.3).
//
// "Our implementation attempts, where possible, to batch multiple network
// packets per semaphore notification in order to amortize the cost of
// signaling." This bench disables the batching so every delivered packet
// raises a fresh signal (and thus a fresh library-thread dispatch), and
// reports the throughput the mechanism buys.
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

struct Res {
  double mbps;
  std::uint64_t signals;
  std::uint64_t suppressed;
  std::uint64_t wakeups;
};

Res run(LinkType link, bool batched, std::size_t write) {
  Testbed bed(OrgType::kUserLevel, link, 1);
  bed.user_org_a()->netio(0).set_batched_signals(batched);
  bed.user_org_b()->netio(0).set_batched_signals(batched);
  BulkTransfer bulk(bed, 512 * 1024, write);
  auto r = bulk.run();
  Res out{};
  out.mbps = r.ok ? r.throughput_mbps() : -1;
  out.signals = bed.world().metrics().semaphore_signals;
  out.suppressed = bed.user_org_b()->netio(0).counters().signals_suppressed;
  out.wakeups = bed.world().metrics().semaphore_wakeups;
  return out;
}

}  // namespace

int main() {
  bench::heading("Ablation: batched semaphore notification (user-level org)");
  std::printf("%-12s %-8s %10s %12s %12s %12s\n", "link", "write",
              "batched", "Mb/s", "signals", "suppressed");
  for (LinkType link : {LinkType::kEthernet, LinkType::kAn1}) {
    for (std::size_t w : {512u, 4096u}) {
      const Res on = run(link, true, w);
      const Res off = run(link, false, w);
      std::printf("%-12s %-8zu %10s %12.2f %12llu %12llu\n", to_string(link),
                  w, "yes", on.mbps,
                  static_cast<unsigned long long>(on.signals),
                  static_cast<unsigned long long>(on.suppressed));
      std::printf("%-12s %-8zu %10s %12.2f %12llu %12llu\n", to_string(link),
                  w, "no", off.mbps,
                  static_cast<unsigned long long>(off.signals),
                  static_cast<unsigned long long>(off.suppressed));
    }
  }
  std::printf(
      "\nReading: batching collapses the kernel-side signal count by an"
      "\norder of magnitude ('network packet batching is very effective')."
      "\nAt these packet rates the end-to-end throughput effect is modest --"
      "\nthe library thread drains the whole ring per wakeup either way --"
      "\nbut every suppressed signal is kernel time returned to protocol"
      "\nprocessing, and the margin grows with load.\n");
  return 0;
}
