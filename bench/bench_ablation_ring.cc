// Ablation: shared-ring capacity vs the TCP window.
//
// The channel's pinned ring is the paper's shared buffer area ("a region of
// memory ... for holding network packets ... kept pinned for the duration
// of the connection"). Its capacity interacts with TCP's advertised window:
// if the ring can hold fewer packets than the window admits in small
// segments, the ring overflows *below* TCP's flow-control horizon, packets
// die after the window said they would fit, and the retransmission machinery
// pays for the mismatch. (We found this the hard way during calibration.)
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"
#include "core/user_level.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

struct Res {
  double mbps = 0;
  std::uint64_t ring_drops = 0;
  std::uint64_t retransmits = 0;
};

Res run_ring(int capacity) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, 1);
  // Channels are created by the registries at connect time; set the slot
  // count they will request before the transfer starts.
  bed.user_org_a()->registry().set_channel_ring_capacity(capacity);
  bed.user_org_b()->registry().set_channel_ring_capacity(capacity);
  BulkTransfer bulk(bed, 512 * 1024, 512);  // small writes = many packets
  auto r = bulk.run();
  Res out;
  out.mbps = r.ok ? r.throughput_mbps() : -1;
  out.ring_drops = bed.user_org_b()->netio(0).counters().ring_drops;
  out.retransmits =
      bed.user_app_a()->library_stack().tcp().counters().retransmits +
      bed.user_app_a()->library_stack().tcp().counters().timeouts;
  return out;
}

}  // namespace

int main() {
  bench::heading(
      "Ablation: shared-ring capacity vs TCP window (user-level, Ethernet, "
      "512 B writes, 32 KB window = 64 small segments)");
  std::printf("%-14s %12s %12s %14s\n", "ring slots", "Mb/s", "ring drops",
              "rtx+timeouts");
  for (int cap : {16, 32, 64, 128, 192}) {
    const Res r = run_ring(cap);
    std::printf("%-14d %12.2f %12llu %14llu\n", cap, r.mbps,
                static_cast<unsigned long long>(r.ring_drops),
                static_cast<unsigned long long>(r.retransmits));
  }
  std::printf(
      "\nReading: once the ring holds at least window/segment-size packets"
      "\n(64 here) plus slack, drops vanish and the retransmission machinery"
      "\ngoes quiet; below that the ring silently overrides TCP's flow"
      "\ncontrol and throughput collapses into retransmission storms.\n");
  return 0;
}
