// Tenant-isolation exhibit: what per-tenant policing buys an honest victim.
//
// Runs the byzantine scenario matrix -- solo baseline plus every adversary
// kind, each with policing off and on (12 runs) -- and reports the victim's
// verified-stream throughput and ping-pong RTT percentiles for each cell.
// The summary rows are the isolation story in two numbers: the Jain
// fairness index over the victim's normalized throughput across the five
// policed attacks (1.0 = the attacker's presence is invisible), and the
// count of forged frames that reached the wire (must be exactly 0; the
// schema checker enforces it as a zero-metric).
//
// Policed attack runs are also gated against the scenario's isolation
// invariants (fairness floor, policer counters, teardown sweep), so this
// bench doubles as an end-to-end check when run without --json.
//
// `--telemetry` arms the per-tenant time-series sampler on every cell: the
// policed flooder cell (the clearest demand-vs-share story) exports its
// `series.tenant.attacker.demand_bytes` / `series.tenant.victim.*` row
// groups into the JSON, and `--telemetry-jsonl <path>` writes that cell's
// full sampled series for scripts/telemetry_report.py.
//
//   bench_tenant_isolation [--quick] [--json <path>]
//                          [--telemetry] [--telemetry-jsonl <path>]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/adversary.h"
#include "bench/bench_util.h"

using namespace ulnet;

namespace {

void add_rtt_rows(bench::JsonReport& json, const std::string& label,
                  const sim::Stats& rtt,
                  const std::vector<std::pair<std::string, double>>& base) {
  if (rtt.empty()) return;
  auto params = base;
  params.emplace_back("count", static_cast<double>(rtt.count()));
  json.add(label, "p50", "us", rtt.percentile(50), std::nullopt, params);
  json.add(label, "p90", "us", rtt.percentile(90), std::nullopt, params);
  json.add(label, "p99", "us", rtt.percentile(99), std::nullopt, params);
  json.add(label, "max", "us", rtt.max(), std::nullopt, params);
}

// A cell whose probe never completed a round (e.g. an unpoliced flooder
// can starve the probe's connection outright) has no percentiles to print.
double rtt_or_zero(const sim::Stats& rtt, double p) {
  return rtt.empty() ? 0 : rtt.percentile(p);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  static const api::AdversaryKind kAttackers[] = {
      api::AdversaryKind::kHoarder, api::AdversaryKind::kStarver,
      api::AdversaryKind::kForger, api::AdversaryKind::kFlooder,
      api::AdversaryKind::kSpammer};
  constexpr std::uint64_t kSeed = 11;

  bench::heading(std::string("Tenant isolation: victim vs adversary matrix") +
                 (quick ? " (quick)" : ""));
  bench::JsonReport json(argc, argv, "bench_tenant_isolation",
                         "Tenant isolation");
  const bench::TelemetryArgs targs(argc, argv);
  constexpr sim::Time kTelemetryCadence = 5 * sim::kMs;

  auto run = [&](api::AdversaryKind kind, bool policed, double solo_mbps) {
    api::ByzantineScenarioConfig cfg;
    cfg.seed = kSeed;
    cfg.attacker = kind;
    cfg.policing = policed;
    cfg.solo_mbps = policed ? solo_mbps : 0;  // fairness gated only policed
    cfg.measure_rtt = true;
    if (targs.enabled) cfg.telemetry_cadence = kTelemetryCadence;
    if (quick) {
      cfg.bulk_bytes = 768 * 1024;
      cfg.rtt_rounds = 40;
    }
    return api::run_byzantine_scenario(cfg);
  };

  bench::row_header({"scenario", "victim Mb/s", "rtt p50/p99 us", "notes"});
  std::string telemetry_jsonl;
  std::uint64_t forged_total = 0;
  std::vector<double> policed_norm;  // per-attacker x_i for the Jain index
  std::string first_failure;
  double solo_policed_mbps = 0;

  for (const bool policed : {false, true}) {
    const api::ByzantineReport solo =
        run(api::AdversaryKind::kNone, policed, 0);
    if (policed) solo_policed_mbps = solo.victim_mbps;
    forged_total += solo.forged_frames_on_wire;
    const std::string mode = policed ? "policed" : "unpoliced";
    const std::string solo_label = "solo/" + mode;
    std::printf("%-34s%-34.2f%-6.0f/%-27.0f%s\n", solo_label.c_str(),
                solo.victim_mbps, rtt_or_zero(solo.victim_rtt_us, 50),
                rtt_or_zero(solo.victim_rtt_us, 99), "baseline");
    std::vector<std::pair<std::string, double>> params = {
        {"seed", static_cast<double>(kSeed)},
        {"policed", policed ? 1.0 : 0.0},
        {"quick", quick ? 1.0 : 0.0}};
    json.add(solo_label, "victim_mbps", "Mb/s", solo.victim_mbps,
             std::nullopt, params);
    add_rtt_rows(json, "rtt/" + solo_label, solo.victim_rtt_us, params);
    if (!solo.failure().empty() && first_failure.empty()) {
      first_failure = solo_label + ": " + solo.failure();
    }

    for (std::size_t a = 0; a < 5; ++a) {
      const api::AdversaryKind kind = kAttackers[a];
      const api::ByzantineReport rep =
          run(kind, policed, policed ? solo_policed_mbps : 0);
      forged_total += rep.forged_frames_on_wire;
      const std::string label = std::string(api::to_string(kind)) + "/" + mode;
      char notes[96];
      std::snprintf(notes, sizeof notes,
                    "%llu policed, %llu strikes, %llu quarantined",
                    static_cast<unsigned long long>(rep.tenant_tx_policed),
                    static_cast<unsigned long long>(rep.forgery_strikes),
                    static_cast<unsigned long long>(rep.tenant_quarantines));
      std::printf("%-34s%-34.2f%-6.0f/%-27.0f%s\n", label.c_str(),
                  rep.victim_mbps, rtt_or_zero(rep.victim_rtt_us, 50),
                  rtt_or_zero(rep.victim_rtt_us, 99), notes);
      auto aparams = params;
      aparams.emplace_back("attacker", static_cast<double>(a));
      json.add(label, "victim_mbps", "Mb/s", rep.victim_mbps, std::nullopt,
               aparams);
      add_rtt_rows(json, "rtt/" + label, rep.victim_rtt_us, aparams);
      // One cell carries the series exhibit: the policed flooder, where the
      // attacker's demand series keeps climbing while the policer clips its
      // share and the victim's demand stays on slope.
      if (targs.enabled && policed && kind == api::AdversaryKind::kFlooder) {
        bench::add_telemetry(json, rep.telemetry, kTelemetryCadence);
        telemetry_jsonl = rep.telemetry_jsonl;
      }
      if (policed && solo_policed_mbps > 0) {
        policed_norm.push_back(rep.victim_mbps / solo_policed_mbps);
      }
      // Policed cells must uphold the full isolation contract. Unpoliced
      // cells exist to show what the attacker does to an unprotected
      // victim -- starvation there is the exhibit, not a failure -- so only
      // the unconditional invariants apply: nothing forged on the wire,
      // nothing unreclaimable after the kill.
      std::string cell_fail;
      if (policed) {
        cell_fail = rep.failure();
      } else if (rep.forged_frames_on_wire != 0) {
        cell_fail = "forged frames reached the wire";
      } else if (rep.attacker_killed && rep.attacker_channels_left != 0) {
        // (Pool loans can legitimately be in flight here: a starved victim
        // stream may still be draining when the run is snapshotted.)
        cell_fail = "attacker left unreclaimed channels";
      }
      if (!cell_fail.empty() && first_failure.empty()) {
        first_failure = label + ": " + cell_fail;
      }
    }
  }

  // Jain fairness index over the victim's normalized throughput across the
  // five policed attacks: J = (sum x)^2 / (n * sum x^2), 1.0 when the
  // victim keeps identical throughput no matter which adversary it shares
  // the hosts with.
  double jain = 0;
  if (!policed_norm.empty()) {
    double s = 0, s2 = 0;
    for (const double x : policed_norm) {
      s += x;
      s2 += x * x;
    }
    jain = s2 > 0 ? (s * s) / (static_cast<double>(policed_norm.size()) * s2)
                  : 0;
  }
  std::printf("\n%-34s%.4f over %zu policed attacks\n", "Jain fairness index",
              jain, policed_norm.size());
  std::printf("%-34s%llu (must be 0)\n", "forged frames on wire",
              static_cast<unsigned long long>(forged_total));

  std::vector<std::pair<std::string, double>> sum_params = {
      {"seed", static_cast<double>(kSeed)}, {"quick", quick ? 1.0 : 0.0}};
  json.add("fairness", "jain_index", "index", jain, std::nullopt, sum_params);
  json.add("wire", "forged_frames_on_wire", "count",
           static_cast<double>(forged_total), std::nullopt, sum_params);
  if (!json.write()) return 2;
  if (!targs.write_jsonl(telemetry_jsonl)) return 2;

  if (!first_failure.empty()) {
    std::fprintf(stderr, "FAIL: %s\n", first_failure.c_str());
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
