// Latency provenance exhibit: a fully traced + profiled bulk transfer.
//
// Runs one user-level bulk transfer with the world tracer enabled and
// exports every provenance artifact this repo produces:
//
//   --trace <path>    Chrome/Perfetto trace (packet spans, causal flows,
//                     instant events) -- validated by scripts/trace_check.py
//   --profile <path>  simulated-CPU profile, JSON per host/component
//   --folded <path>   the same profile as folded stacks ("host;component N")
//                     for flamegraph.pl / inferno / speedscope
//   --json <path>     bench JSON: throughput plus the per-stage latency
//                     histogram percentiles (scripts/check_bench_json.py)
//
// The transfer is sized so the complete event firehose fits in the tracer
// ring: trace_check.py runs in strict mode (every span closed, every flow
// consumed, zero overwrites), which a lossless Ethernet run guarantees.
#include <cstdio>
#include <string>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"
#include "core/user_level.h"
#include "net/link.h"

using namespace ulnet;
using namespace ulnet::api;

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "bench_trace_bulk",
                           "Latency provenance");
  std::string trace_path, profile_path, folded_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) trace_path = argv[++i];
    else if (arg == "--profile" && i + 1 < argc) profile_path = argv[++i];
    else if (arg == "--folded" && i + 1 < argc) folded_path = argv[++i];
  }

  constexpr std::size_t kBytes = 256 * 1024;
  constexpr std::size_t kWriteSize = 4096;
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/1);
  bed.world().tracer().set_enabled(true);
  BulkTransfer bulk(bed, kBytes, kWriteSize);
  const auto r = bulk.run();
  if (!r.ok) {
    std::fprintf(stderr, "traced bulk transfer failed: %s\n",
                 r.error.c_str());
    return 1;
  }

  const sim::Tracer& tr = bed.world().tracer();
  bench::heading("Latency provenance: traced 256 KB user-level transfer");
  std::printf("throughput        %8.2f Mb/s\n", r.throughput_mbps());
  std::printf("trace events      %8zu retained (%llu recorded, %llu "
              "overwritten)\n",
              tr.size(),
              static_cast<unsigned long long>(tr.recorded_total()),
              static_cast<unsigned long long>(tr.overwritten()));
  std::printf("packet ids issued %8llu\n",
              static_cast<unsigned long long>(tr.last_trace_id()));

  if (!trace_path.empty() && !tr.write_chrome_json(trace_path)) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }
  if (!profile_path.empty()) {
    std::FILE* f = std::fopen(profile_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", profile_path.c_str());
      return 1;
    }
    const std::string json = bed.world().profile_dump_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  if (!folded_path.empty() &&
      !bed.world().write_profile_folded(folded_path)) {
    std::fprintf(stderr, "cannot write %s\n", folded_path.c_str());
    return 1;
  }
  std::printf("\n%s\n", bed.world().profile_folded().c_str());

  report.add("bulk", "throughput", "Mb/s", r.throughput_mbps());
  report.add("trace", "events", "count", static_cast<double>(tr.size()));
  report.add("trace", "ids", "count",
             static_cast<double>(tr.last_trace_id()));
  bench::add_hist(report, "hist.link.tx_wait", bed.link().tx_wait_hist());
  bench::add_hist(report, "hist.link.transit", bed.link().transit_hist());
  core::NetIoModule& rx_netio = bed.user_org_b()->netio(0);
  bench::add_hist(report, "hist.netio.ring_residency",
                  rx_netio.ring_residency_hist());
  bench::add_hist(report, "hist.netio.wakeup_latency",
                  rx_netio.wakeup_latency_hist());
  bench::add_hist(report, "hist.lib.drain_batch",
                  bed.user_app_b()->drain_batch_hist(), "pkts");
  bench::add_hist(report, "hist.tcp.setup_time",
                  bed.user_org_a()->registry().stack().tcp().setup_time_hist());
  return report.write() ? 0 : 1;
}
