// Ablation: application-specific specialization of the protocol library
// (the paper's second motivation, Section 1.1, and its Section 5 "canned
// options" proposal).
//
// Because the protocol lives in a user-linkable library, an application can
// tune it without kernel changes. This bench exercises three such knobs:
//   * eliding the data checksum on a reliable link (AN1),
//   * enlarging the receive window for bulk transfer,
//   * write coalescing vs per-write segments for small writes.
// Each row compares the stock library against the specialized one, on the
// same workload -- something the monolithic organizations cannot offer
// per-application.
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

double tput(LinkType link, const proto::TcpConfig& cfg, std::size_t write) {
  Testbed bed(OrgType::kUserLevel, link, 1);
  bed.app_a().set_tcp_config(cfg);
  bed.app_b().set_tcp_config(cfg);
  BulkTransfer bulk(bed, 512 * 1024, write);
  auto r = bulk.run();
  return r.ok ? r.throughput_mbps() : -1;
}

}  // namespace

int main() {
  bench::heading(
      "Ablation: application-specific library specialization (user-level "
      "org)");

  const proto::TcpConfig stock;

  proto::TcpConfig no_cksum = stock;
  no_cksum.checksum_enabled = false;

  proto::TcpConfig big_win = stock;
  big_win.recv_buf = 60 * 1024;
  big_win.send_buf = 128 * 1024;

  proto::TcpConfig coalesce = stock;
  coalesce.segment_per_write = false;

  std::printf("%-52s %10s %10s\n", "configuration", "measured", "baseline");
  std::printf("%-52s %7.2f Mb/s %7.2f Mb/s\n",
              "AN1 bulk 4 KB writes: checksum elided on reliable link",
              tput(LinkType::kAn1, no_cksum, 4096),
              tput(LinkType::kAn1, stock, 4096));
  std::printf("%-52s %7.2f Mb/s %7.2f Mb/s\n",
              "AN1 bulk 4 KB writes: enlarged windows",
              tput(LinkType::kAn1, big_win, 4096),
              tput(LinkType::kAn1, stock, 4096));
  std::printf("%-52s %7.2f Mb/s %7.2f Mb/s\n",
              "AN1 bulk 512 B writes: coalescing writes into MSS segments",
              tput(LinkType::kAn1, coalesce, 512),
              tput(LinkType::kAn1, stock, 512));
  std::printf("%-52s %7.2f Mb/s %7.2f Mb/s\n",
              "Ethernet bulk 512 B writes: coalescing writes",
              tput(LinkType::kEthernet, coalesce, 512),
              tput(LinkType::kEthernet, stock, 512));

  std::printf(
      "\nReading: each specialization is a per-application link-time choice"
      "\n-- no kernel or server rebuild. The paper: 'further performance"
      "\nadvantages may be gained by exploiting application-specific"
      "\nknowledge to fine tune a particular instance of a protocol.'\n");
  return 0;
}
