// Ablation: packet-filter engines, wall-clock (google-benchmark).
//
// The paper's Section 2.2 argument in host-CPU terms: the original Packet
// Filter's stack interpreter "is not likely to scale with CPU speeds
// because it is memory intensive"; BPF is the RISC-friendly redesign; the
// synthesized in-kernel matcher needs "only a few instructions". Here the
// three engines from src/filter run on this machine's CPU over matching
// and non-matching packets, alone and in a 16-binding scan.
#include <benchmark/benchmark.h>

#include "filter/filter.h"
#include "net/frame.h"
#include "proto/wire.h"

using namespace ulnet;

namespace {

filter::FlowKey make_key(std::uint16_t lport) {
  filter::FlowKey k;
  k.ethertype = net::kEtherTypeIp;
  k.ip_proto = proto::kProtoTcp;
  k.local_ip = 0x0a000002;
  k.local_port = lport;
  k.remote_ip = 0x0a000001;
  k.remote_port = 20000;
  return k;
}

buf::Bytes make_packet(std::uint16_t dport) {
  buf::Bytes pkt;
  for (int i = 0; i < 12; ++i) buf::put8(pkt, 0);
  buf::put16(pkt, net::kEtherTypeIp);
  proto::Ipv4Header ih;
  ih.total_len = 40 + 512;
  ih.proto = proto::kProtoTcp;
  ih.src = net::Ipv4Addr{0x0a000001};
  ih.dst = net::Ipv4Addr{0x0a000002};
  ih.serialize(pkt);
  proto::TcpHeader th;
  th.sport = 20000;
  th.dport = dport;
  buf::Bytes payload(512, 0x42);
  th.serialize(pkt, ih.src, ih.dst, payload);
  return pkt;
}

const filter::FlowKey kKey = make_key(5001);
const buf::Bytes kHit = make_packet(5001);
const buf::Bytes kMiss = make_packet(9999);

void BM_CspfMatch(benchmark::State& state) {
  filter::CspfVm vm(filter::build_cspf_flow_filter(kKey, 14, 12));
  const auto& pkt = state.range(0) ? kHit : kMiss;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.run(pkt));
  }
}
BENCHMARK(BM_CspfMatch)->Arg(1)->Arg(0);

void BM_BpfMatch(benchmark::State& state) {
  filter::BpfVm vm(filter::build_bpf_flow_filter(kKey, 14, 12));
  const auto& pkt = state.range(0) ? kHit : kMiss;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.run(pkt));
  }
}
BENCHMARK(BM_BpfMatch)->Arg(1)->Arg(0);

void BM_SynthesizedMatch(benchmark::State& state) {
  filter::SynthesizedMatcher m(kKey, 14);
  const auto& pkt = state.range(0) ? kHit : kMiss;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.run(pkt));
  }
}
BENCHMARK(BM_SynthesizedMatch)->Arg(1)->Arg(0);

// A realistic kernel: N installed bindings; the packet matches the last.
template <typename Vm, typename Builder>
void scan_bindings(benchmark::State& state, Builder build) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Vm> vms;
  for (int i = 0; i < n; ++i) {
    vms.push_back(build(make_key(static_cast<std::uint16_t>(6000 + i))));
  }
  vms.push_back(build(kKey));  // the hit is scanned last
  for (auto _ : state) {
    bool hit = false;
    for (const auto& vm : vms) {
      auto r = vm.run(kHit);
      if (r.accept) {
        hit = true;
        break;
      }
    }
    benchmark::DoNotOptimize(hit);
  }
}

void BM_CspfScan(benchmark::State& state) {
  scan_bindings<filter::CspfVm>(state, [](const filter::FlowKey& k) {
    return filter::CspfVm(filter::build_cspf_flow_filter(k, 14, 12));
  });
}
BENCHMARK(BM_CspfScan)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_BpfScan(benchmark::State& state) {
  scan_bindings<filter::BpfVm>(state, [](const filter::FlowKey& k) {
    return filter::BpfVm(filter::build_bpf_flow_filter(k, 14, 12));
  });
}
BENCHMARK(BM_BpfScan)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_SynthesizedScan(benchmark::State& state) {
  scan_bindings<filter::SynthesizedMatcher>(
      state, [](const filter::FlowKey& k) {
        return filter::SynthesizedMatcher(k, 14);
      });
}
BENCHMARK(BM_SynthesizedScan)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
