// Connection-scale bench: N concurrent TCP bulk transfers through one
// user-level stack, swept across demultiplexing modes.
//
// The paper's packet filter is consulted once per channel per packet, so a
// naive interpreted demultiplexer (BPF / CSPF) costs O(channels) per packet
// and the per-packet budget grows with connection count. Two mechanisms
// keep the per-packet cost flat in N:
//   - synthesized mode fronts its bindings with an O(1) hash table keyed
//     on the header template's flow tuple (PR 4);
//   - interpreted modes compile every installed program into one shared
//     prefix trie (DPF/MPF-style aggregation), classifying each packet in
//     a single pass whose cost scales with header depth, not binding count.
// This bench makes both visible: aggregate throughput at N=256 must stay
// within 15% of N=8 for synthesized AND for aggregated BPF/CSPF, while the
// legacy linear-walk rows (engines `bpflin` / `cspflin`) keep exhibiting
// the collapse the trie kills (bpflin n256/n8 ~ 0.17).
//
// Per-connection throughput on a shared 10 Mb/s link necessarily falls as
// 1/N; the scale criterion is therefore expressed on the aggregate
// (per-connection throughput x N), which is what "no per-connection
// penalty" means on a fixed-capacity link.
//
// Every aggregated run executes with the differential shadow on: each
// frame is also classified by the uncharged paper-accurate linear walk and
// any disagreement counts in `demux_diff_mismatches`. That counter is
// exported per aggregated run and exact-gated at 0, so the baseline itself
// proves the trie verdicts bit-identical to the walk.
//
// Methodology: all N connections are established first (staggered active
// opens), then every connection starts its bulk transfer at once. The
// window measured is first data byte received -> last data byte received,
// so connection setup is excluded and the transfers genuinely overlap.
//
// Riding along:
//   - header prediction off (fastpath/off/n8): simulated results must be
//     IDENTICAL to the default run -- the VJ fast path is cost-neutral by
//     construction, and the "fastpath/neutrality" ratio row pins that at
//     exactly 1.
//   - ACK coalescing on (coalesce/on/n8): fewer pure ACKs on the wire
//     (the "coalesce/effect" row pins the reduction ratio).
//   - NAPI-style interrupt mitigation (full mode): napi/on/n256 re-runs
//     the aggregated BPF N=256 sweep with the NIC in budgeted poll mode;
//     napi/off/n256 is the same run with per-frame interrupts. The
//     interrupt count collapses while throughput holds; poll-round batch
//     sizes and backlog waits export as `hist.napi.*` groups.
//   - cfg/<engine> rows: one self-describing row group per engine with
//     the TCP knobs every run of that engine used (RTO floors, receive
//     buffer) plus whether aggregation was on -- so the baseline JSON
//     carries its own experimental conditions.
//
// All throughput/counter rows carry kind "simulated" and are exact-gated
// by scripts/perf_gate.py against bench/BENCH_scale_conns.json. Two
// wall-clock rows (host time for the N=256 synthesized and aggregated BPF
// runs) show the one-pass structures also win host time; those use the
// tolerance band.
//
//   - per-connection memory (mem/<engine>/<link>/nN rows): peak resident
//     packet-pool bytes and peak TCB bytes, sampled once per simulated
//     second while the transfers run, plus the per-connection quotient.
//     Byte totals depend on the build (sizeof of connection state), so
//     these rows ride the wall-clock tolerance band, not the exact gate.
//
// Usage: bench_scale_conns [--quick] [--json <path>]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"
#include "core/user_level.h"
#include "hw/nic.h"
#include "proto/tcp.h"
#include "sim/histogram.h"
#include "sim/time.h"

namespace {

using ulnet::api::LinkType;
using ulnet::api::NetSystem;
using ulnet::api::OrgType;
using ulnet::api::SocketEvents;
using ulnet::api::SocketId;
using ulnet::api::Testbed;
using DemuxMode = ulnet::core::NetIoModule::DemuxMode;
namespace sim = ulnet::sim;
namespace bench = ulnet::bench;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// N concurrent client->server bulk transfers over one Testbed. Phase 1
// establishes every connection (active opens staggered 2 ms apart so the
// registry handshakes don't all land in one tick); phase 2 starts every
// pump simultaneously once the last connection reports established.
class ScaleConns {
 public:
  ScaleConns(Testbed& bed, int conns, std::size_t per_conn_bytes,
             std::size_t write_size)
      : bed_(bed),
        n_(conns),
        per_conn_(per_conn_bytes),
        write_size_(write_size),
        total_(per_conn_bytes * static_cast<std::size_t>(conns)),
        warmup_(total_ / 4) {}

  bool run(sim::Time deadline) {
    start();
    auto& world = bed_.world();
    while (!finished() && world.now() < deadline) {
      world.run_for(sim::kSec);
      sample_memory();
    }
    return finished();
  }

  [[nodiscard]] bool finished() const { return closed_ == n_ && !failed_; }
  // Memory-diet gauges: peaks over the per-second samples of the run.
  [[nodiscard]] std::size_t peak_pool_bytes() const { return peak_pool_; }
  [[nodiscard]] std::size_t peak_tcb_bytes() const { return peak_tcb_; }
  [[nodiscard]] bool data_valid() const { return data_valid_; }
  [[nodiscard]] sim::Time first_byte() const { return first_byte_; }
  [[nodiscard]] sim::Time last_byte() const { return last_byte_; }

  // Steady-state aggregate over the last 3/4 of the combined stream: the
  // first quarter (connection ramp-up, slow start, the initial delayed-ACK
  // stall) is warmup, excluded the same relative amount at every N.
  [[nodiscard]] double aggregate_mbps() const {
    if (last_byte_ <= first_byte_) return 0;
    return static_cast<double>(total_ - warmup_) * 8.0 /
           sim::to_sec(last_byte_ - first_byte_) / 1e6;
  }

 private:
  struct ClientConn {
    SocketId sock = 0;
    std::size_t sent = 0;
    bool close_issued = false;
  };
  struct ServerConn {
    SocketId sock = 0;
    std::size_t received = 0;
  };

  // Resident packet-pool bytes plus TCB bytes across all four stacks (two
  // library stacks, two registry stacks) -- the footprint the
  // per-connection memory diet (compact stats, reserved tables) shrinks.
  void sample_memory() {
    std::size_t tcb = 0;
    for (auto* app : {bed_.user_app_a(), bed_.user_app_b()}) {
      tcb += app->library_stack().tcp().tcb_bytes();
    }
    for (auto* org : {bed_.user_org_a(), bed_.user_org_b()}) {
      tcb += org->registry().stack().tcp().tcb_bytes();
    }
    peak_tcb_ = std::max(peak_tcb_, tcb);
    peak_pool_ =
        std::max(peak_pool_, bed_.world().pool().resident_bytes());
  }

  void start() {
    NetSystem& server = bed_.app_b();
    NetSystem& client = bed_.app_a();
    auto& loop = bed_.world().loop();
    clients_.resize(static_cast<std::size_t>(n_));

    server.run_app([this, &server](sim::TaskCtx&) {
      server.listen(kPort, [this, &server](SocketId id) {
        server_.emplace(id, ServerConn{id, 0});
        SocketEvents evs;
        evs.on_readable = [this, &server, id](std::size_t) {
          ServerConn& sc = server_.at(id);
          auto data = server.recv(id, std::numeric_limits<std::size_t>::max());
          if (data.empty()) return;
          const sim::Time now = bed_.world().now();
          if (first_byte_ == 0 && received_ + data.size() > warmup_) {
            first_byte_ = now;  // steady-state window starts here
          }
          for (std::size_t i = 0; i < data.size(); ++i) {
            if (data[i] != ulnet::api::payload_byte(sc.received + i)) {
              data_valid_ = false;
              break;
            }
          }
          sc.received += data.size();
          received_ += data.size();
          if (first_byte_ != 0) last_byte_ = now;
        };
        evs.on_eof = [&server, id] { server.close(id); };
        evs.on_closed = [this, id](const std::string&) {
          if (server_.at(id).received < per_conn_) failed_ = true;
          closed_++;
        };
        return evs;
      });
    });

    for (int i = 0; i < n_; ++i) {
      loop.schedule_in(50 * sim::kMs + i * 2 * sim::kMs, [this, &client, i] {
        client.run_app([this, &client, i](sim::TaskCtx&) {
          SocketEvents evs;
          evs.on_established = [this] {
            if (++established_ == n_) start_pumps();
          };
          evs.on_writable = [this, &client, i] {
            client.run_app([this, i](sim::TaskCtx& ctx) { pump(i, ctx); });
          };
          evs.on_closed = [this](const std::string& reason) {
            if (!reason.empty()) failed_ = true;
          };
          client.connect(bed_.ip_b(), kPort, std::move(evs),
                         [this, i](SocketId id) {
                           clients_[static_cast<std::size_t>(i)].sock = id;
                         });
        });
      });
    }
  }

  void start_pumps() {
    NetSystem& client = bed_.app_a();
    for (int i = 0; i < n_; ++i) {
      client.run_app([this, i](sim::TaskCtx& ctx) { pump(i, ctx); });
    }
  }

  void pump(int i, sim::TaskCtx&) {
    NetSystem& client = bed_.app_a();
    ClientConn& cc = clients_[static_cast<std::size_t>(i)];
    if (cc.sent < per_conn_) {
      const std::size_t n = std::min(write_size_, per_conn_ - cc.sent);
      const std::size_t took =
          client.send(cc.sock, ulnet::api::payload_bytes(cc.sent, n));
      cc.sent += took;
      if (took < n) return;  // buffer full: resume on on_writable
      client.run_app([this, i](sim::TaskCtx& ctx) { pump(i, ctx); });
      return;
    }
    if (!cc.close_issued) {
      cc.close_issued = true;
      client.close(cc.sock);
    }
  }

  static constexpr std::uint16_t kPort = 5001;

  Testbed& bed_;
  int n_;
  std::size_t per_conn_;
  std::size_t write_size_;
  std::size_t total_;
  std::size_t warmup_;
  std::vector<ClientConn> clients_;
  std::unordered_map<SocketId, ServerConn> server_;
  std::size_t received_ = 0;
  int established_ = 0;
  int closed_ = 0;
  bool failed_ = false;
  bool data_valid_ = true;
  sim::Time first_byte_ = 0;
  sim::Time last_byte_ = 0;
  std::size_t peak_pool_ = 0;
  std::size_t peak_tcb_ = 0;
};

struct RunResult {
  bool ok = false;
  bool data_valid = false;
  double aggregate_mbps = 0;
  double per_conn_mbps = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t pure_acks = 0;
  std::uint64_t fast_path_acks = 0;
  std::uint64_t fast_path_data = 0;
  std::uint64_t hash_hits = 0;
  std::uint64_t fallback_walks = 0;
  std::uint64_t trie_hits = 0;
  std::uint64_t trie_rebuilds = 0;
  std::uint64_t diff_mismatches = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t poll_transitions = 0;
  std::uint64_t poll_rounds = 0;
  std::uint64_t poll_frames = 0;
  std::uint64_t poll_budget_exhausted = 0;
  std::uint64_t poll_rearms = 0;
  sim::Histogram poll_batch;    // frames drained per poll round (both NICs)
  sim::Histogram backlog_wait;  // ns a frame waited in the device backlog
  sim::Histogram ring_res;      // netio shared-ring residency (both hosts)
  std::size_t pool_bytes_resident = 0;  // peak, sampled per simulated second
  std::size_t tcb_bytes = 0;            // peak, all four stacks
  double host_ms = 0;
};

// `aggregation` turns the one-pass trie on (interpreted modes only; the
// differential shadow rides along so every aggregated run self-checks
// against the linear walk). `poll` puts both NICs in NAPI-style budgeted
// poll mode with the default budget/watermark.
RunResult run_scale(LinkType link, DemuxMode mode, int conns,
                    std::size_t per_conn_bytes, ulnet::proto::TcpConfig tcfg,
                    bool aggregation = false, bool poll = false) {
  const auto t0 = Clock::now();
  Testbed bed(OrgType::kUserLevel, link);
  for (auto* org : {bed.user_org_a(), bed.user_org_b()}) {
    auto& nio = org->netio(0);
    nio.set_demux_mode(mode);
    nio.set_filter_aggregation(aggregation);
    nio.set_demux_differential(aggregation);
    if (poll) {
      ulnet::hw::Nic::PollConfig pc;
      pc.enabled = true;
      nio.nic().set_poll_config(pc);
    }
  }
  bed.app_a().set_tcp_config(tcfg);
  bed.app_b().set_tcp_config(tcfg);

  ScaleConns wl(bed, conns, per_conn_bytes, 4096);
  RunResult r;
  r.ok = wl.run(600 * sim::kSec);
  r.data_valid = wl.data_valid();
  r.aggregate_mbps = wl.aggregate_mbps();
  r.per_conn_mbps = r.aggregate_mbps / conns;

  const auto& tcp_a = bed.user_app_a()->library_stack().tcp().counters();
  const auto& tcp_b = bed.user_app_b()->library_stack().tcp().counters();
  r.retransmits = tcp_a.retransmits + tcp_b.retransmits;
  r.pure_acks = tcp_a.pure_acks_sent + tcp_b.pure_acks_sent;
  r.fast_path_acks = tcp_a.fast_path_acks + tcp_b.fast_path_acks;
  r.fast_path_data = tcp_a.fast_path_data + tcp_b.fast_path_data;
  auto& netio_a = bed.user_org_a()->netio(0);
  auto& netio_b = bed.user_org_b()->netio(0);
  const auto& nio_a = netio_a.counters();
  const auto& nio_b = netio_b.counters();
  r.hash_hits = nio_a.demux_hash_hits + nio_b.demux_hash_hits;
  r.fallback_walks = nio_a.demux_fallback_walks + nio_b.demux_fallback_walks;
  r.trie_hits = nio_a.demux_trie_hits + nio_b.demux_trie_hits;
  r.trie_rebuilds = nio_a.demux_trie_rebuilds + nio_b.demux_trie_rebuilds;
  r.diff_mismatches =
      nio_a.demux_diff_mismatches + nio_b.demux_diff_mismatches;
  const sim::Metrics& m = bed.world().metrics();
  r.interrupts = m.interrupts;
  r.poll_transitions = m.nic_poll_transitions;
  r.poll_rounds = m.nic_poll_rounds;
  r.poll_frames = m.nic_poll_frames;
  r.poll_budget_exhausted = m.nic_poll_budget_exhausted;
  r.poll_rearms = m.nic_poll_rearms;
  r.poll_batch = netio_a.nic().poll_batch_hist();
  r.poll_batch.merge(netio_b.nic().poll_batch_hist());
  r.backlog_wait = netio_a.nic().backlog_wait_hist();
  r.backlog_wait.merge(netio_b.nic().backlog_wait_hist());
  r.ring_res = netio_a.ring_residency_hist();
  r.ring_res.merge(netio_b.ring_residency_hist());
  r.pool_bytes_resident = wl.peak_pool_bytes();
  r.tcb_bytes = wl.peak_tcb_bytes();
  r.host_ms = ms_since(t0);
  return r;
}

// Base TCP config for every run in this bench, identical at every N and in
// every engine so the sweep varies exactly one thing at a time. The
// cfg/<engine> rows in the JSON restate these knobs per engine, so the
// committed baseline is self-describing.
//
// recv_buf: 8 KiB per connection (a 1993-realistic socket buffer). The
// stack default (32 KiB) would queue 256 full windows ~7 s deep on a
// 10 Mb/s link at N=256; 8 KiB keeps the deliberate bufferbloat bounded
// while staying >> 2*MSS, so delayed ACKs never stall a window.
//
// rto floors: sized above the worst-case per-packet delay of the sweep,
// which has two components: the shared-link queueing delay (~1.4 s of
// data at N=256 even with 8 KiB buffers) and, in the legacy linear-walk
// engines (bpflin/cspflin), the O(N) demux walk itself, which inflates
// effective RTT far beyond the handshake RTTs that trained srtt. No
// packets are lost in these runs, so any retransmission is spurious by
// construction; without the floors the first data flight of every
// connection would time out at once and the dup-ACK echo of those
// retransmissions snowballs. The aggregated engines (bpf/cspf) no longer
// need the demux headroom -- their walk is one pass -- but every engine
// keeps the same floors so throughput differences are attributable to
// demux cost alone, not to tuning.
ulnet::proto::TcpConfig base_cfg() {
  ulnet::proto::TcpConfig cfg;
  cfg.recv_buf = 8 * 1024;
  cfg.rto_min = 4 * sim::kSec;
  cfg.rto_initial = 6 * sim::kSec;
  return cfg;
}

const char* link_name(LinkType l) {
  return l == LinkType::kEthernet ? "eth" : "an1";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  bench::JsonReport report(argc, argv, "bench_scale_conns",
                           "Connection scaling");
  const std::size_t kPerConn = 128 * 1024;  // same in quick and full mode
  bool all_ok = true;

  // An engine is a demux configuration: mode plus whether the one-pass
  // trie aggregation is on. `bpf`/`cspf` are the aggregated interpreted
  // engines (the production configuration); `bpflin`/`cspflin` keep the
  // paper-accurate per-binding linear walk as the collapse exhibit.
  struct MatrixRun {
    const char* engine;
    LinkType link;
    DemuxMode mode;
    bool agg;
    int conns;
    bool in_quick;
  };
  // The linear-walk sweeps stop where the per-packet walk makes the
  // simulated run pathological: CSPF at 64 bindings already spends ~4x the
  // wire time per packet in demux, so N=256 is skipped for cspflin. The
  // aggregated engines sweep the full range -- that is the point.
  const std::vector<MatrixRun> matrix = {
      {"synth", LinkType::kEthernet, DemuxMode::kSynthesized, false, 1, true},
      {"synth", LinkType::kEthernet, DemuxMode::kSynthesized, false, 8, true},
      {"synth", LinkType::kEthernet, DemuxMode::kSynthesized, false, 64, false},
      {"synth", LinkType::kEthernet, DemuxMode::kSynthesized, false, 256,
       false},
      {"synth", LinkType::kAn1, DemuxMode::kSynthesized, false, 1, false},
      {"synth", LinkType::kAn1, DemuxMode::kSynthesized, false, 8, true},
      {"synth", LinkType::kAn1, DemuxMode::kSynthesized, false, 64, false},
      {"synth", LinkType::kAn1, DemuxMode::kSynthesized, false, 256, false},
      {"bpf", LinkType::kEthernet, DemuxMode::kBpf, true, 1, false},
      {"bpf", LinkType::kEthernet, DemuxMode::kBpf, true, 8, true},
      {"bpf", LinkType::kEthernet, DemuxMode::kBpf, true, 64, false},
      {"bpf", LinkType::kEthernet, DemuxMode::kBpf, true, 256, false},
      {"cspf", LinkType::kEthernet, DemuxMode::kCspf, true, 1, false},
      {"cspf", LinkType::kEthernet, DemuxMode::kCspf, true, 8, false},
      {"cspf", LinkType::kEthernet, DemuxMode::kCspf, true, 64, false},
      {"cspf", LinkType::kEthernet, DemuxMode::kCspf, true, 256, false},
      {"bpflin", LinkType::kEthernet, DemuxMode::kBpf, false, 8, true},
      {"bpflin", LinkType::kEthernet, DemuxMode::kBpf, false, 64, false},
      {"bpflin", LinkType::kEthernet, DemuxMode::kBpf, false, 256, false},
      {"cspflin", LinkType::kEthernet, DemuxMode::kCspf, false, 8, false},
      {"cspflin", LinkType::kEthernet, DemuxMode::kCspf, false, 64, false},
  };

  bench::heading("Connection scaling: N concurrent transfers, 128 KiB each");
  bench::row_header({"config", "aggregate", "per-conn", "rtx / walk / trie"});

  // Keyed "engine/link/nN" -> result, for the derived ratio rows.
  std::unordered_map<std::string, RunResult> results;
  std::set<std::string> engines_seen;

  for (const MatrixRun& m : matrix) {
    if (quick && !m.in_quick) continue;
    const ulnet::proto::TcpConfig tcfg = base_cfg();  // defaults: prediction on
    RunResult r =
        run_scale(m.link, m.mode, m.conns, kPerConn, tcfg, m.agg);
    all_ok = all_ok && r.ok && r.data_valid;
    engines_seen.insert(m.engine);
    char label[64];
    std::snprintf(label, sizeof label, "%s/%s/n%d", m.engine,
                  link_name(m.link), m.conns);
    results[label] = r;

    char tail[64];
    std::snprintf(tail, sizeof tail, "%llu / %llu / %llu",
                  static_cast<unsigned long long>(r.retransmits),
                  static_cast<unsigned long long>(r.fallback_walks),
                  static_cast<unsigned long long>(r.trie_hits));
    std::printf("%-34s%-34s%-34s%-34s\n", label,
                bench::cellf("%.3f Mb/s", r.aggregate_mbps).c_str(),
                bench::cellf("%.4f Mb/s", r.per_conn_mbps).c_str(), tail);

    std::vector<std::pair<std::string, double>> params = {
        {"conns", static_cast<double>(m.conns)},
        {"per_conn_kib", static_cast<double>(kPerConn / 1024)},
        {"link", m.link == LinkType::kEthernet ? 0.0 : 1.0},
        {"demux", static_cast<double>(static_cast<int>(m.mode))},
        {"aggregation", m.agg ? 1.0 : 0.0},
    };
    report.add(label, "aggregate_throughput", "Mb/s", r.aggregate_mbps,
               std::nullopt, params, "simulated");
    report.add(label, "per_conn_throughput", "Mb/s", r.per_conn_mbps,
               std::nullopt, params, "simulated");
    report.add(label, "retransmits", "count",
               static_cast<double>(r.retransmits), std::nullopt, params,
               "simulated");
    report.add(label, "demux_hash_hits", "count",
               static_cast<double>(r.hash_hits), std::nullopt, params,
               "simulated");
    report.add(label, "demux_fallback_walks", "count",
               static_cast<double>(r.fallback_walks), std::nullopt, params,
               "simulated");
    report.add(label, "pure_acks_sent", "count",
               static_cast<double>(r.pure_acks), std::nullopt, params,
               "simulated");
    if (m.agg) {
      // The trie resolved every delivered frame; the uncharged shadow walk
      // agreed on all of them. Exact-gating mismatches at 0 makes the
      // committed baseline a standing proof of verdict identity.
      report.add(label, "demux_trie_hits", "count",
                 static_cast<double>(r.trie_hits), std::nullopt, params,
                 "simulated");
      report.add(label, "demux_trie_rebuilds", "count",
                 static_cast<double>(r.trie_rebuilds), std::nullopt, params,
                 "simulated");
      report.add(label, "demux_diff_mismatches", "count",
                 static_cast<double>(r.diff_mismatches), std::nullopt, params,
                 "simulated");
      if (r.diff_mismatches != 0) {
        std::printf("FAIL: %s aggregated demux disagreed with the linear "
                    "walk %llu times\n", label,
                    static_cast<unsigned long long>(r.diff_mismatches));
        all_ok = false;
      }
    }
    // Per-connection memory rows: build-dependent byte totals, so they
    // ride the wall-clock tolerance band rather than the exact gate.
    {
      char mem_label[72];
      std::snprintf(mem_label, sizeof mem_label, "mem/%s", label);
      std::vector<std::pair<std::string, double>> mparams = params;
      mparams.emplace_back("higher_is_better", 0.0);
      report.add(mem_label, "pool_bytes_resident", "bytes",
                 static_cast<double>(r.pool_bytes_resident), std::nullopt,
                 mparams, "wallclock");
      report.add(mem_label, "tcb_bytes", "bytes",
                 static_cast<double>(r.tcb_bytes), std::nullopt, mparams,
                 "wallclock");
      report.add(mem_label, "tcb_bytes_per_conn", "bytes",
                 static_cast<double>(r.tcb_bytes) / m.conns, std::nullopt,
                 mparams, "wallclock");
    }
    if (!quick && m.conns == 256 && m.link == LinkType::kEthernet &&
        (std::strcmp(m.engine, "synth") == 0 ||
         std::strcmp(m.engine, "bpf") == 0)) {
      params.emplace_back("higher_is_better", 0.0);
      report.add(label, "host_time", "ms", r.host_ms, std::nullopt, params,
                 "wallclock");
    }
  }

  // --- Self-describing baselines: one cfg row group per engine ----------
  // Restates the TCP knobs and demux configuration every run of the
  // engine used, so a reader of BENCH_scale_conns.json does not need this
  // source file to know the experimental conditions.
  {
    const ulnet::proto::TcpConfig cfg = base_cfg();
    struct EngineCfg {
      const char* engine;
      double aggregation;
    };
    for (const EngineCfg& ec :
         {EngineCfg{"synth", 0}, EngineCfg{"bpf", 1}, EngineCfg{"cspf", 1},
          EngineCfg{"bpflin", 0}, EngineCfg{"cspflin", 0}}) {
      if (engines_seen.find(ec.engine) == engines_seen.end()) continue;
      const std::string label = std::string("cfg/") + ec.engine;
      const std::vector<std::pair<std::string, double>> params = {
          {"aggregation", ec.aggregation},
      };
      report.add(label, "rto_min_ms", "ms",
                 static_cast<double>(cfg.rto_min) / sim::kMs, std::nullopt,
                 params, "simulated");
      report.add(label, "rto_initial_ms", "ms",
                 static_cast<double>(cfg.rto_initial) / sim::kMs, std::nullopt,
                 params, "simulated");
      report.add(label, "recv_buf_kib", "KiB",
                 static_cast<double>(cfg.recv_buf) / 1024.0, std::nullopt,
                 params, "simulated");
    }
  }

  // --- Ablations at N=8, Ethernet, synthesized demux ---------------------

  bench::heading("Ablations (N=8, Ethernet, synthesized demux)");
  bench::row_header({"config", "aggregate", "fast-path hits", "pure ACKs"});

  const RunResult& base8 = results.at("synth/eth/n8");

  ulnet::proto::TcpConfig no_hp = base_cfg();
  no_hp.header_prediction = false;
  RunResult hp_off = run_scale(LinkType::kEthernet, DemuxMode::kSynthesized,
                               8, kPerConn, no_hp);
  all_ok = all_ok && hp_off.ok && hp_off.data_valid;

  ulnet::proto::TcpConfig coalesce = base_cfg();
  coalesce.ack_coalescing = true;
  RunResult co_on = run_scale(LinkType::kEthernet, DemuxMode::kSynthesized,
                              8, kPerConn, coalesce);
  all_ok = all_ok && co_on.ok && co_on.data_valid;

  struct AblRow {
    const char* label;
    const RunResult* r;
  };
  for (const AblRow& row : {AblRow{"fastpath/on/n8", &base8},
                            AblRow{"fastpath/off/n8", &hp_off},
                            AblRow{"coalesce/on/n8", &co_on}}) {
    std::printf("%-34s%-34s%-34s%-34s\n", row.label,
                bench::cellf("%.3f Mb/s", row.r->aggregate_mbps).c_str(),
                std::to_string(row.r->fast_path_acks + row.r->fast_path_data)
                    .c_str(),
                std::to_string(row.r->pure_acks).c_str());
    std::vector<std::pair<std::string, double>> params = {
        {"conns", 8.0},
        {"per_conn_kib", static_cast<double>(kPerConn / 1024)},
        {"header_prediction",
         row.r == &hp_off ? 0.0 : 1.0},
        {"ack_coalescing", row.r == &co_on ? 1.0 : 0.0},
    };
    report.add(row.label, "aggregate_throughput", "Mb/s",
               row.r->aggregate_mbps, std::nullopt, params, "simulated");
    report.add(row.label, "fast_path_acks", "count",
               static_cast<double>(row.r->fast_path_acks), std::nullopt,
               params, "simulated");
    report.add(row.label, "fast_path_data", "count",
               static_cast<double>(row.r->fast_path_data), std::nullopt,
               params, "simulated");
    report.add(row.label, "pure_acks_sent", "count",
               static_cast<double>(row.r->pure_acks), std::nullopt, params,
               "simulated");
    report.add(row.label, "retransmits", "count",
               static_cast<double>(row.r->retransmits), std::nullopt, params,
               "simulated");
  }

  // --- Derived rows: the claims this bench exists to pin -----------------

  // Header prediction must be invisible in simulated time: identical
  // aggregate throughput with the shortcut on or off.
  const double neutrality =
      hp_off.aggregate_mbps > 0 ? base8.aggregate_mbps / hp_off.aggregate_mbps
                                : 0;
  report.add("fastpath/neutrality", "on_vs_off_aggregate", "ratio",
             neutrality, std::nullopt, {}, "simulated");
  if (neutrality != 1.0) {
    std::printf("FAIL: header prediction changed simulated throughput "
                "(on/off ratio %.9f)\n", neutrality);
    all_ok = false;
  }

  // ACK coalescing reduces the pure-ACK count at equal delivered data.
  const double ack_ratio =
      base8.pure_acks > 0 ? static_cast<double>(co_on.pure_acks) /
                                static_cast<double>(base8.pure_acks)
                          : 0;
  report.add("coalesce/effect", "pure_ack_ratio", "ratio", ack_ratio,
             std::nullopt, {}, "simulated");
  std::printf("ACK coalescing: %llu -> %llu pure ACKs (x%.3f)\n",
              static_cast<unsigned long long>(base8.pure_acks),
              static_cast<unsigned long long>(co_on.pure_acks), ack_ratio);

  // Scale ratios (full mode only: they need the N=64/N=256 runs). The
  // acceptance bar: aggregate at N=256 within 15% of N=8 for synthesized
  // AND for the aggregated interpreted engines; the linear-walk engines
  // are the before picture and are expected to collapse well past that.
  if (!quick) {
    struct Ratio {
      const char* label;
      const char* metric;
      const char* hi;
      const char* lo;
      bool must_hold;
    };
    for (const Ratio& rt :
         {Ratio{"scale/synth/eth", "n256_vs_n8_aggregate", "synth/eth/n256",
                "synth/eth/n8", true},
          Ratio{"scale/synth/an1", "n256_vs_n8_aggregate", "synth/an1/n256",
                "synth/an1/n8", true},
          Ratio{"scale/bpf/eth", "n256_vs_n8_aggregate", "bpf/eth/n256",
                "bpf/eth/n8", true},
          Ratio{"scale/cspf/eth", "n256_vs_n8_aggregate", "cspf/eth/n256",
                "cspf/eth/n8", true},
          Ratio{"scale/bpflin/eth", "n256_vs_n8_aggregate", "bpflin/eth/n256",
                "bpflin/eth/n8", false},
          Ratio{"scale/cspflin/eth", "n64_vs_n8_aggregate", "cspflin/eth/n64",
                "cspflin/eth/n8", false}}) {
      const double hi = results.at(rt.hi).aggregate_mbps;
      const double lo = results.at(rt.lo).aggregate_mbps;
      const double ratio = lo > 0 ? hi / lo : 0;
      report.add(rt.label, rt.metric, "ratio", ratio, std::nullopt, {},
                 "simulated");
      std::printf("%-24s %s = %.4f\n", rt.label, rt.metric, ratio);
      if (rt.must_hold && (ratio < 0.85 || ratio > 1.15)) {
        std::printf("FAIL: %s outside the 15%% band\n", rt.label);
        all_ok = false;
      }
    }
  }

  // --- NAPI exhibit (full mode): aggregated BPF N=256, poll vs interrupt -
  // Same workload, same demux engine; the only change is the NIC draining
  // its backlog in budgeted poll rounds instead of one interrupt per
  // frame. Throughput must hold while the interrupt count collapses.
  if (!quick) {
    bench::heading("Interrupt mitigation (N=256, Ethernet, aggregated BPF)");
    bench::row_header({"config", "aggregate", "interrupts", "poll rounds"});
    const RunResult& napi_off = results.at("bpf/eth/n256");
    RunResult napi_on = run_scale(LinkType::kEthernet, DemuxMode::kBpf, 256,
                                  kPerConn, base_cfg(), /*aggregation=*/true,
                                  /*poll=*/true);
    all_ok = all_ok && napi_on.ok && napi_on.data_valid;
    struct NapiRow {
      const char* label;
      const RunResult* r;
      double poll;
    };
    for (const NapiRow& row : {NapiRow{"napi/off/n256", &napi_off, 0},
                               NapiRow{"napi/on/n256", &napi_on, 1}}) {
      std::printf("%-34s%-34s%-34s%-34s\n", row.label,
                  bench::cellf("%.3f Mb/s", row.r->aggregate_mbps).c_str(),
                  std::to_string(row.r->interrupts).c_str(),
                  std::to_string(row.r->poll_rounds).c_str());
      const std::vector<std::pair<std::string, double>> params = {
          {"conns", 256.0},
          {"aggregation", 1.0},
          {"poll", row.poll},
          {"poll_budget", 16.0},
          {"rearm_watermark", 0.0},
      };
      report.add(row.label, "aggregate_throughput", "Mb/s",
                 row.r->aggregate_mbps, std::nullopt, params, "simulated");
      report.add(row.label, "interrupts", "count",
                 static_cast<double>(row.r->interrupts), std::nullopt, params,
                 "simulated");
      report.add(row.label, "retransmits", "count",
                 static_cast<double>(row.r->retransmits), std::nullopt,
                 params, "simulated");
    }
    const std::vector<std::pair<std::string, double>> on_params = {
        {"conns", 256.0}, {"poll_budget", 16.0}, {"rearm_watermark", 0.0}};
    report.add("napi/on/n256", "poll_transitions", "count",
               static_cast<double>(napi_on.poll_transitions), std::nullopt,
               on_params, "simulated");
    report.add("napi/on/n256", "poll_rounds", "count",
               static_cast<double>(napi_on.poll_rounds), std::nullopt,
               on_params, "simulated");
    report.add("napi/on/n256", "poll_frames", "count",
               static_cast<double>(napi_on.poll_frames), std::nullopt,
               on_params, "simulated");
    report.add("napi/on/n256", "poll_budget_exhausted", "count",
               static_cast<double>(napi_on.poll_budget_exhausted),
               std::nullopt, on_params, "simulated");
    report.add("napi/on/n256", "poll_rearms", "count",
               static_cast<double>(napi_on.poll_rearms), std::nullopt,
               on_params, "simulated");
    const double intr_ratio =
        napi_off.interrupts > 0
            ? static_cast<double>(napi_on.interrupts) /
                  static_cast<double>(napi_off.interrupts)
            : 0;
    report.add("napi/effect", "interrupt_ratio", "ratio", intr_ratio,
               std::nullopt, {}, "simulated");
    std::printf("interrupt mitigation: %llu -> %llu interrupts (x%.4f)\n",
                static_cast<unsigned long long>(napi_off.interrupts),
                static_cast<unsigned long long>(napi_on.interrupts),
                intr_ratio);
    bench::add_hist(report, "hist.napi.poll_batch", napi_on.poll_batch,
                    "frames");
    bench::add_hist(report, "hist.napi.backlog_wait", napi_on.backlog_wait);
    bench::add_hist(report, "hist.napi_on.ring_residency", napi_on.ring_res);
    bench::add_hist(report, "hist.napi_off.ring_residency", napi_off.ring_res);
  }

  if (!report.write()) return 1;
  if (!all_ok) {
    std::printf("\nbench_scale_conns: FAILURES (see above)\n");
    return 1;
  }
  std::printf("\nbench_scale_conns: all runs completed, data verified\n");
  return 0;
}
