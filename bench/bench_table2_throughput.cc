// Table 2 -- "Throughput Measurements (in megabits/second)".
//
// TCP throughput between user programs on idle workstations, as a function
// of the user packet (write) size, for each system/network combination the
// paper reports:
//   Ethernet:  Ultrix 4.2A | Mach 3.0/UX (mapped) | user-level library
//   AN1:       Ultrix 4.2A | user-level library
// (The paper does not report Mach/UX on AN1 -- no mapped AN1 driver -- and
// neither do we.)
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"
#include "core/user_level.h"
#include "net/link.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

double throughput(OrgType org, LinkType link, std::size_t write_size) {
  Testbed bed(org, link, /*seed=*/1);
  // 1 MB is enough to amortize setup and reach steady state.
  BulkTransfer bulk(bed, 1024 * 1024, write_size);
  auto r = bulk.run();
  if (!r.ok) {
    std::fprintf(stderr, "  !! %s/%s/%zu failed: %s\n", to_string(org),
                 to_string(link), write_size, r.error.c_str());
    return -1;
  }
  return r.throughput_mbps();
}

struct Row {
  const char* label;
  OrgType org;
  LinkType link;
  double paper[4];  // 512 / 1024 / 2048 / 4096
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "bench_table2_throughput", "Table 2");
  const std::size_t sizes[4] = {512, 1024, 2048, 4096};
  const Row rows[] = {
      {"Ethernet / Ultrix 4.2A", OrgType::kInKernel, LinkType::kEthernet,
       {5.8, 7.6, 7.6, 7.6}},
      {"Ethernet / Mach 3.0+UX (mapped)", OrgType::kSingleServer,
       LinkType::kEthernet, {2.1, 2.5, 3.2, 3.5}},
      {"Ethernet / user-level library", OrgType::kUserLevel,
       LinkType::kEthernet, {4.3, 4.6, 4.8, 5.0}},
      {"AN1 / Ultrix 4.2A", OrgType::kInKernel, LinkType::kAn1,
       {4.8, 10.2, 11.9, 11.9}},
      {"AN1 / user-level library", OrgType::kUserLevel, LinkType::kAn1,
       {6.7, 8.1, 9.4, 11.9}},
  };

  bench::heading(
      "Table 2: TCP throughput (Mb/s) vs user packet size -- measured "
      "(paper)");
  std::printf("%-36s %24s %24s %24s %24s\n", "System", "512 B", "1024 B",
              "2048 B", "4096 B");
  for (const Row& row : rows) {
    std::printf("%-36s", row.label);
    for (int i = 0; i < 4; ++i) {
      const double m = throughput(row.org, row.link, sizes[i]);
      std::printf(" %10.2f (paper %5.1f)", m, row.paper[i]);
      report.add(row.label, "throughput", "Mb/s", m, row.paper[i],
                 {{"write_size", static_cast<double>(sizes[i])}});
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape checks: Ultrix > user-level > Mach/UX on Ethernet; user-level"
      "\nwins at 512 B on AN1 (no copies below the remap threshold); both"
      "\nconverge at the AN1 driver's 1500-byte encapsulation limit.\n");

  // Latency provenance: re-run the user-level/Ethernet/4096 cell with the
  // testbed kept alive and export its per-stage residency histograms (the
  // table above only reports end-to-end throughput).
  if (report.enabled()) {
    Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/1);
    BulkTransfer bulk(bed, 1024 * 1024, 4096);
    if (bulk.run().ok) {
      bench::add_hist(report, "hist.link.tx_wait", bed.link().tx_wait_hist());
      bench::add_hist(report, "hist.link.transit", bed.link().transit_hist());
      core::NetIoModule& rx_netio = bed.user_org_b()->netio(0);
      bench::add_hist(report, "hist.netio.ring_residency",
                      rx_netio.ring_residency_hist());
      bench::add_hist(report, "hist.netio.wakeup_latency",
                      rx_netio.wakeup_latency_hist());
      bench::add_hist(report, "hist.lib.drain_batch",
                      bed.user_app_b()->drain_batch_hist(), "pkts");
      bench::add_hist(report, "hist.tcp.setup_time",
                      bed.user_org_a()->registry().stack().tcp()
                          .setup_time_hist());
    }
  }
  return report.write() ? 0 : 1;
}
