// Figure 1 -- "Alternative Organizations of Protocols" -- quantified.
//
// The figure is a taxonomy: in-kernel monolithic, single trusted server,
// dedicated servers per protocol/device (the "rare case"), and the paper's
// user-level library. This bench turns the taxonomy into numbers: for an
// identical workload it reports the *mechanism counts* on the data path
// (traps, IPC messages, context switches, cross-space copies, signals) and
// the performance each structure achieves -- making the structural argument
// of the paper measurable.
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

struct OrgResult {
  double mbps = 0;
  double rtt_us = 0;
  sim::Metrics per_op;  // mechanism deltas for the bulk run
  std::uint64_t packets = 0;
};

OrgResult measure(OrgType org) {
  OrgResult res;
  {
    Testbed bed(org, LinkType::kEthernet, 1);
    auto before = bed.world().metrics();
    BulkTransfer bulk(bed, 512 * 1024, 4096);
    auto r = bulk.run();
    res.mbps = r.ok ? r.throughput_mbps() : -1;
    res.per_op = bed.world().metrics().delta_since(before);
    res.packets = res.per_op.packets_rx;
  }
  {
    Testbed bed(org, LinkType::kEthernet, 2);
    PingPong pp(bed, 512, 30);
    res.rtt_us = pp.run_mean_rtt_us();
  }
  return res;
}

double per_pkt(std::uint64_t count, std::uint64_t pkts) {
  return pkts == 0 ? 0 : static_cast<double>(count) / static_cast<double>(pkts);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "bench_fig1_organizations", "Figure 1");
  bench::heading(
      "Figure 1 quantified: mechanisms per packet and resulting performance "
      "(512 KB bulk / 512 B ping-pong, Ethernet)");

  const OrgType orgs[] = {OrgType::kInKernel, OrgType::kSingleServer,
                          OrgType::kDedicated, OrgType::kUserLevel};

  std::printf("%-30s %9s %9s %9s %9s %9s %9s %11s %11s\n", "Organization",
              "traps/p", "fast/p", "ipc/p", "ctxsw/p", "copies/p", "sigs/p",
              "bulk Mb/s", "RTT us");
  for (OrgType org : orgs) {
    const OrgResult r = measure(org);
    std::printf("%-30s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %11.2f %11.0f\n",
                to_string(org), per_pkt(r.per_op.traps, r.packets),
                per_pkt(r.per_op.specialized_traps, r.packets),
                per_pkt(r.per_op.ipc_messages, r.packets),
                per_pkt(r.per_op.context_switches, r.packets),
                per_pkt(r.per_op.copies + r.per_op.page_remaps, r.packets),
                per_pkt(r.per_op.semaphore_signals, r.packets), r.mbps,
                r.rtt_us);
    const char* label = to_string(org);
    report.add(label, "traps_per_pkt", "1/pkt",
               per_pkt(r.per_op.traps, r.packets));
    report.add(label, "specialized_traps_per_pkt", "1/pkt",
               per_pkt(r.per_op.specialized_traps, r.packets));
    report.add(label, "ipc_per_pkt", "1/pkt",
               per_pkt(r.per_op.ipc_messages, r.packets));
    report.add(label, "ctxsw_per_pkt", "1/pkt",
               per_pkt(r.per_op.context_switches, r.packets));
    report.add(label, "copies_per_pkt", "1/pkt",
               per_pkt(r.per_op.copies + r.per_op.page_remaps, r.packets));
    report.add(label, "signals_per_pkt", "1/pkt",
               per_pkt(r.per_op.semaphore_signals, r.packets));
    report.add(label, "bulk_throughput", "Mb/s", r.mbps);
    report.add(label, "rtt", "us", r.rtt_us);
  }

  std::printf(
      "\nReading: the single-server and dedicated-server organizations pay"
      "\nIPC + context switches per packet on the critical path; the"
      "\ndedicated-server 'rare case' pays the most and performs worst,"
      "\nwhich is exactly why the paper rejects it. The user-level library"
      "\nreplaces generic traps and copies with one specialized trap per"
      "\nsend and batched signals per receive, approaching in-kernel"
      "\nperformance without kernel residence.\n");
  return report.write() ? 0 : 1;
}
