// Chaos exhibit: crash-fault injection against the user-level organization.
//
// Runs the canonical chaos scenario (api/chaos.h) twice with the same seed
// and checks (a) every robustness invariant -- the surviving bulk stream
// delivers byte-exact data, the killed library's peer sees a clean RST, the
// trusted path reclaims every channel/ring/buffer -- and (b) replay
// identity: both runs produce the same fingerprint. Exits nonzero on any
// violation, so scripts/run_chaos.py can sweep seeds and ctest can gate.
//
//   bench_chaos [--seed N] [--an1] [--json <path>] [--postmortem <dir>]
//
// With --postmortem, a failed run leaves a flight-recorder bundle (event
// trace, metrics, netio dumps, CPU profile, fault census) in <dir>.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/chaos.h"
#include "bench/bench_util.h"

using namespace ulnet;

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  api::LinkType link = api::LinkType::kEthernet;
  std::string postmortem_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--an1") == 0) {
      link = api::LinkType::kAn1;
    } else if (std::strcmp(argv[i], "--postmortem") == 0 && i + 1 < argc) {
      postmortem_dir = argv[++i];
    }
  }

  api::ChaosScenarioConfig cfg;
  cfg.seed = seed;
  cfg.link = link;
  cfg.postmortem_dir = postmortem_dir;

  bench::heading("Chaos: crash-fault injection, seed " + std::to_string(seed) +
                 (link == api::LinkType::kAn1 ? " (AN1)" : " (Ethernet)"));
  const api::ChaosReport rep = api::run_chaos_scenario(cfg);
  const api::ChaosReport replay = api::run_chaos_scenario(cfg);
  const bool replay_ok = rep.fingerprint == replay.fingerprint;

  bench::row_header({"invariant", "value"});
  std::printf("%-34s%s\n", "bulk survived + data valid",
              rep.bulk_ok && rep.bulk_data_valid ? "yes" : "NO");
  std::printf("%-34s%s\n", "victim killed, peer saw RST",
              rep.victim_killed && rep.peer_saw_reset ? "yes" : "NO");
  std::printf("%-34s%zu live (expect %zu) / %zu live (expect %zu)\n",
              "channels A / B", rep.live_channels_a, rep.expected_channels_a,
              rep.live_channels_b, rep.expected_channels_b);
  std::printf("%-34s%d / %d (-1 = no BQIs on this link)\n", "AN1 rings A / B",
              rep.bqis_a, rep.bqis_b);
  std::printf("%-34s%llu channels, %llu RSTs\n", "registry reclaimed",
              static_cast<unsigned long long>(rep.channels_reclaimed),
              static_cast<unsigned long long>(rep.rsts_sent));
  std::printf("%-34s%llu dropped, %llu repolls, %llu recoveries\n",
              "wakeups",
              static_cast<unsigned long long>(rep.wakeups_dropped),
              static_cast<unsigned long long>(rep.repolls),
              static_cast<unsigned long long>(rep.repoll_recoveries));
  std::printf("%-34s%llu backpressure events, %llu retries\n", "transmit",
              static_cast<unsigned long long>(rep.tx_backpressure),
              static_cast<unsigned long long>(rep.tx_retries));
  std::printf("%-34s%016llx %s\n", "replay fingerprint",
              static_cast<unsigned long long>(rep.fingerprint),
              replay_ok ? "(replay matches)" : "(REPLAY DIVERGED)");
  std::printf("fault census: %s\n", rep.fault_census.c_str());

  bench::JsonReport json(argc, argv, "bench_chaos", "Chaos");
  const auto b01 = [](bool v) { return v ? 1.0 : 0.0; };
  std::vector<std::pair<std::string, double>> params = {
      {"seed", static_cast<double>(seed)},
      {"an1", link == api::LinkType::kAn1 ? 1.0 : 0.0}};
  json.add("survivor", "bulk_ok", "bool", b01(rep.bulk_ok && rep.bulk_data_valid),
           std::nullopt, params);
  json.add("crash", "peer_saw_reset", "bool",
           b01(rep.victim_killed && rep.peer_saw_reset), std::nullopt, params);
  json.add("leaks.channels", "leaked_channels", "count",
           static_cast<double>((rep.live_channels_a - rep.expected_channels_a) +
                               (rep.live_channels_b - rep.expected_channels_b) +
                               rep.victim_channels_left),
           std::nullopt, params);
  json.add("leaks.bqis", "leaked_bqis", "count",
           rep.bqis_a < 0 ? 0.0
                          : static_cast<double>(
                                (rep.bqis_a - static_cast<int>(rep.live_channels_a)) +
                                (rep.bqis_b - static_cast<int>(rep.live_channels_b))),
           std::nullopt, params);
  json.add("reclaims.channels", "channels_reclaimed", "count",
           static_cast<double>(rep.channels_reclaimed), std::nullopt, params);
  json.add("reclaims.rsts", "rsts_sent", "count",
           static_cast<double>(rep.rsts_sent), std::nullopt, params);
  json.add("faults.wakeups_dropped", "wakeups_dropped", "count",
           static_cast<double>(rep.wakeups_dropped), std::nullopt, params);
  json.add("faults.tx_backpressure", "tx_backpressure", "count",
           static_cast<double>(rep.tx_backpressure), std::nullopt, params);
  json.add("recovery.tx_retries", "tx_retries", "count",
           static_cast<double>(rep.tx_retries), std::nullopt, params);
  json.add("recovery.repoll_recoveries", "repoll_recoveries", "count",
           static_cast<double>(rep.repoll_recoveries), std::nullopt, params);
  json.add("replay", "fingerprint_match", "bool", b01(replay_ok), std::nullopt,
           params);
  if (!json.write()) return 2;

  const std::string fail = rep.failure();
  if (!fail.empty()) {
    std::fprintf(stderr, "FAIL (seed %llu): %s\n",
                 static_cast<unsigned long long>(seed), fail.c_str());
    return 1;
  }
  if (!replay_ok) {
    std::fprintf(stderr,
                 "FAIL (seed %llu): replay diverged (%016llx vs %016llx)\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(rep.fingerprint),
                 static_cast<unsigned long long>(replay.fingerprint));
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
