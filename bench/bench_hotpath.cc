// Hot-path microbenchmarks for the simulator substrate itself.
//
// Unlike the exhibit benches (which regenerate tables from the paper in
// *simulated* time), this bench measures the *wall-clock* cost of the
// simulator's hot paths: event-loop churn, packet-pool alloc/recycle,
// Internet-checksum throughput, and an end-to-end TCP bulk transfer. These
// are the numbers scripts/perf_gate.py compares against the committed
// baseline in bench/BENCH_hotpath.json.
//
// Results carry "kind": wall-clock rows are host-dependent (gated with a
// tolerance band); simulated rows (e.g. allocations per packet) must stay
// bit-identical across runs on any host.
//
// Usage: bench_hotpath [--quick] [--json <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"
#include "buf/checksum.h"
#include "buf/packet_pool.h"
#include "sim/event_loop.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Keep results observable so the optimizer cannot delete the measured work.
volatile std::uint64_t g_sink = 0;

void sink(std::uint64_t v) { g_sink = g_sink + v; }

// --- Event-loop churn: schedule / cancel / fire mix -------------------------

double bench_event_loop_ns_per_op(int rounds, int events_per_round) {
  std::uint64_t ops = 0;
  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    ulnet::sim::EventLoop loop;
    std::vector<ulnet::sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(events_per_round));
    std::uint64_t fired = 0;
    for (int i = 0; i < events_per_round; ++i) {
      // Interleaved deadlines exercise real heap movement, not append-only.
      const ulnet::sim::Time when = (i % 7) * 1000 + i;
      ids.push_back(loop.schedule_at(when, [&fired] { ++fired; }));
    }
    // Cancel every third event (timer-wheel-style churn), then drain.
    for (std::size_t i = 0; i < ids.size(); i += 3) loop.cancel(ids[i]);
    loop.run();
    sink(fired);
    ops += static_cast<std::uint64_t>(events_per_round);  // schedule+fire pairs
  }
  const double total_ns = ms_since(t0) * 1e6;
  return total_ns / static_cast<double>(ops);
}

// --- Packet pool: acquire/recycle vs plain vector allocation ----------------

double bench_pool_ns_per_cycle(int iters, std::size_t size) {
  ulnet::buf::PacketPool pool;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    ulnet::buf::Bytes b = pool.acquire(size);
    b.resize(size);
    b[0] = static_cast<std::uint8_t>(i);
    sink(b[0]);
    pool.recycle(std::move(b));
  }
  return ms_since(t0) * 1e6 / iters;
}

double bench_malloc_ns_per_cycle(int iters, std::size_t size) {
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    ulnet::buf::Bytes b;
    b.reserve(size);
    b.resize(size);
    b[0] = static_cast<std::uint8_t>(i);
    sink(b[0]);
  }
  return ms_since(t0) * 1e6 / iters;
}

// --- Checksum throughput ----------------------------------------------------

template <typename ChecksumFn>
double bench_checksum_mb_per_s(int iters, ChecksumFn fn) {
  ulnet::buf::Bytes data(64 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    sink(fn(data));
  }
  const double secs = ms_since(t0) / 1e3;
  const double bytes = static_cast<double>(data.size()) * iters;
  return bytes / (1024.0 * 1024.0) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ulnet;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  bench::JsonReport report(argc, argv, "bench_hotpath", "hot paths");

  bench::heading("Simulator hot paths (wall clock)");
  bench::row_header({"path", "result"});

  // Event loop.
  const double ev_ns = bench_event_loop_ns_per_op(quick ? 20 : 200, 10000);
  std::printf("%-34s%-34s\n", "event loop churn",
              bench::cellf("%.1f ns/op", ev_ns).c_str());
  report.add("event_loop_churn", "latency", "ns/op", ev_ns, std::nullopt,
             {{"events", 10000}, {"higher_is_better", 0}}, "wallclock");

  // Pool vs plain allocation.
  const int pool_iters = quick ? 200000 : 2000000;
  const double pool_ns = bench_pool_ns_per_cycle(pool_iters, 1500);
  const double malloc_ns = bench_malloc_ns_per_cycle(pool_iters, 1500);
  std::printf("%-34s%-34s\n", "pool acquire+recycle (1500B)",
              bench::cellf("%.1f ns/cycle", pool_ns).c_str());
  std::printf("%-34s%-34s\n", "plain vector alloc (1500B)",
              bench::cellf("%.1f ns/cycle", malloc_ns).c_str());
  report.add("pool_cycle_1500", "latency", "ns/op", pool_ns, std::nullopt,
             {{"bytes", 1500}, {"higher_is_better", 0}}, "wallclock");
  report.add("malloc_cycle_1500", "latency", "ns/op", malloc_ns, std::nullopt,
             {{"bytes", 1500}, {"higher_is_better", 0}}, "wallclock");

  // Checksum.
  const int ck_iters = quick ? 2000 : 20000;
  const double word_mbs = bench_checksum_mb_per_s(
      ck_iters,
      [](buf::ByteView v) { return ulnet::buf::internet_checksum(v); });
  const double scalar_mbs = bench_checksum_mb_per_s(
      ck_iters,
      [](buf::ByteView v) { return ulnet::buf::internet_checksum_scalar(v); });
  std::printf("%-34s%-34s\n", "checksum (word-at-a-time)",
              bench::cellf("%.0f MB/s", word_mbs).c_str());
  std::printf("%-34s%-34s\n", "checksum (scalar reference)",
              bench::cellf("%.0f MB/s", scalar_mbs).c_str());
  report.add("checksum_word", "throughput", "MB/s", word_mbs, std::nullopt,
             {{"buffer", 65536}, {"higher_is_better", 1}}, "wallclock");
  report.add("checksum_scalar", "throughput", "MB/s", scalar_mbs, std::nullopt,
             {{"buffer", 65536}, {"higher_is_better", 1}}, "wallclock");

  // End-to-end TCP bulk transfer (the paper's user-level organization).
  const std::size_t total = quick ? 256 * 1024 : 1024 * 1024;
  const auto t0 = Clock::now();
  api::Testbed bed(api::OrgType::kUserLevel, api::LinkType::kEthernet, 1);
  api::BulkTransfer bulk(bed, total, 4096);
  auto r = bulk.run();
  const double bulk_ms = ms_since(t0);
  const sim::Metrics& m = bed.world().metrics();
  const double packets =
      static_cast<double>(m.packets_tx + m.packets_rx);
  const double acquires = static_cast<double>(m.pool_hits + m.pool_misses);
  const double heap_per_pkt =
      packets > 0 ? static_cast<double>(m.pool_misses) / packets : 0;
  const double acquires_per_pkt = packets > 0 ? acquires / packets : 0;
  std::printf("%-34s%-34s\n", "TCP bulk (user-level, wall)",
              bench::cellf("%.1f ms", bulk_ms).c_str());
  std::printf("%-34s%-34s\n", "  heap allocs per packet",
              bench::cellf("%.3f", heap_per_pkt).c_str());
  std::printf("%-34s%-34s\n", "  pool acquires per packet",
              bench::cellf("%.3f", acquires_per_pkt).c_str());
  std::printf("%-34s%-34s\n", "  pool hit rate",
              bench::cellf("%.1f %%",
                           acquires > 0 ? 100.0 * m.pool_hits / acquires : 0)
                  .c_str());
  if (!r.ok) std::fprintf(stderr, "bulk transfer failed\n");
  report.add("tcp_bulk_user_level", "wall_time", "ms", bulk_ms, std::nullopt,
             {{"bytes", static_cast<double>(total)},
              {"higher_is_better", 0}},
             "wallclock");
  // Deterministic rows: identical on every host for a given build.
  report.add("tcp_bulk_user_level", "heap_allocs_per_packet", "allocs/pkt",
             heap_per_pkt, std::nullopt,
             {{"bytes", static_cast<double>(total)}}, "simulated");
  report.add("tcp_bulk_user_level", "pool_acquires_per_packet", "acquires/pkt",
             acquires_per_pkt, std::nullopt,
             {{"bytes", static_cast<double>(total)}}, "simulated");

  if (!report.write()) return 1;
  return r.ok ? 0 : 1;
}
