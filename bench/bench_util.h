// Shared table-printing helpers for the benchmark binaries. Each bench
// regenerates one exhibit of the paper (same rows, same units) from the
// simulation, and prints the paper's published value next to the measured
// one so the comparison is auditable.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace ulnet::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%-34s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) {
    std::printf("%-34s", "---------------------------------");
  }
  std::printf("\n");
}

// "measured (paper: X)" cell.
inline std::string cell(double measured, double paper, const char* unit,
                        int precision = 1) {
  char tmp[96];
  std::snprintf(tmp, sizeof tmp, "%.*f %s (paper %.*f)", precision, measured,
                unit, precision, paper);
  return tmp;
}

inline std::string cellf(const char* fmt, double v) {
  char tmp[64];
  std::snprintf(tmp, sizeof tmp, fmt, v);
  return tmp;
}

}  // namespace ulnet::bench
