// Shared table-printing helpers for the benchmark binaries. Each bench
// regenerates one exhibit of the paper (same rows, same units) from the
// simulation, and prints the paper's published value next to the measured
// one so the comparison is auditable.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/histogram.h"
#include "sim/telemetry.h"

namespace ulnet::bench {

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%-34s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) {
    std::printf("%-34s", "---------------------------------");
  }
  std::printf("\n");
}

// "measured (paper: X)" cell.
inline std::string cell(double measured, double paper, const char* unit,
                        int precision = 1) {
  char tmp[96];
  std::snprintf(tmp, sizeof tmp, "%.*f %s (paper %.*f)", precision, measured,
                unit, precision, paper);
  return tmp;
}

inline std::string cellf(const char* fmt, double v) {
  char tmp[64];
  std::snprintf(tmp, sizeof tmp, fmt, v);
  return tmp;
}

// Machine-readable export: every exhibit bench accepts `--json <path>` and
// writes its measurements in one shared schema, validated by
// scripts/check_bench_json.py:
//
//   {"schema_version": 1, "bench": "<binary name>", "exhibit": "<Table N>",
//    "results": [{"label": str, "metric": str, "unit": str, "value": num,
//                 "paper_value": num?, "params": {str: num, ...}?,
//                 "kind": "simulated"|"wallclock"?}, ...]}
//
// `kind` distinguishes simulated-time measurements (deterministic, must be
// bit-identical across runs) from wall-clock ones (host-dependent; gated
// with a tolerance band by scripts/perf_gate.py). Omitted means simulated.
// The human-readable table still goes to stdout either way.
class JsonReport {
 public:
  JsonReport(int argc, char** argv, std::string bench, std::string exhibit)
      : bench_(std::move(bench)), exhibit_(std::move(exhibit)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) != "--json") continue;
      if (i + 1 < argc) {
        path_ = argv[++i];
      } else {
        missing_path_ = true;
      }
    }
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  void add(std::string label, std::string metric, std::string unit,
           double value, std::optional<double> paper_value = std::nullopt,
           std::vector<std::pair<std::string, double>> params = {},
           std::string kind = {}) {
    results_.push_back(Result{std::move(label), std::move(metric),
                              std::move(unit), value, paper_value,
                              std::move(params), std::move(kind)});
  }

  // Returns false (with a message on stderr) if the file cannot be written;
  // a no-op returning true when --json was not given.
  bool write() const {
    if (missing_path_) {
      std::fprintf(stderr, "--json requires a path\n");
      return false;
    }
    if (path_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::string out = "{\"schema_version\":1,\"bench\":\"" + escape(bench_) +
                      "\",\"exhibit\":\"" + escape(exhibit_) +
                      "\",\"results\":[";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const Result& r = results_[i];
      if (i > 0) out += ',';
      out += "{\"label\":\"" + escape(r.label) + "\",\"metric\":\"" +
             escape(r.metric) + "\",\"unit\":\"" + escape(r.unit) +
             "\",\"value\":" + number(r.value);
      if (r.paper_value) out += ",\"paper_value\":" + number(*r.paper_value);
      if (!r.kind.empty()) out += ",\"kind\":\"" + escape(r.kind) + "\"";
      if (!r.params.empty()) {
        out += ",\"params\":{";
        for (std::size_t j = 0; j < r.params.size(); ++j) {
          if (j > 0) out += ',';
          out += "\"" + escape(r.params[j].first) +
                 "\":" + number(r.params[j].second);
        }
        out += '}';
      }
      out += '}';
    }
    out += "]}\n";
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    return ok;
  }

 private:
  struct Result {
    std::string label, metric, unit;
    double value;
    std::optional<double> paper_value;
    std::vector<std::pair<std::string, double>> params;
    std::string kind;  // "", "simulated" or "wallclock"
  };

  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char tmp[8];
        std::snprintf(tmp, sizeof tmp, "\\u%04x", c);
        out += tmp;
      } else {
        out += c;
      }
    }
    return out;
  }

  // JSON has no NaN/Inf literals; failed measurements (-1 sentinels stay
  // representable) degrade to null.
  static std::string number(double v) {
    if (!(v == v) || v > 1e308 || v < -1e308) return "null";
    char tmp[40];
    std::snprintf(tmp, sizeof tmp, "%.6g", v);
    return tmp;
  }

  std::string bench_, exhibit_, path_;
  bool missing_path_ = false;
  std::vector<Result> results_;
};

// Export one per-stage latency histogram as the four-percentile row group
// scripts/check_bench_json.py validates: one shared label, metrics
// p50/p90/p99/max, every row carrying params.count. Skips empty histograms
// (a group with count 0 has no latency story to tell).
inline void add_hist(JsonReport& report, const std::string& label,
                     const sim::Histogram& h, const std::string& unit = "ns") {
  if (h.empty()) return;
  const auto count = static_cast<double>(h.count());
  report.add(label, "p50", unit, static_cast<double>(h.percentile(50)),
             std::nullopt, {{"count", count}});
  report.add(label, "p90", unit, static_cast<double>(h.percentile(90)),
             std::nullopt, {{"count", count}});
  report.add(label, "p99", unit, static_cast<double>(h.percentile(99)),
             std::nullopt, {{"count", count}});
  report.add(label, "max", unit, static_cast<double>(h.max()), std::nullopt,
             {{"count", count}});
}

// Export every sampled telemetry series as a `series.<name>` row group in
// the shared bench schema (validated by scripts/check_bench_json.py):
// metrics `samples`/`last`/`max` on every series, plus `dropped` and
// `monotone_violations` on counters, each row carrying params.cadence_ns.
// Simulated-time series export as kind "simulated" (bit-identical across
// runs); series sampled from host clocks carry kind "wallclock" so the
// determinism tooling skips them.
inline void add_telemetry(JsonReport& report,
                          const std::vector<sim::Telemetry::Summary>& summaries,
                          sim::Time cadence) {
  for (const sim::Telemetry::Summary& s : summaries) {
    if (s.samples == 0) continue;
    const std::string label = "series." + s.name;
    const std::string kind = s.wallclock ? "wallclock" : "simulated";
    const std::vector<std::pair<std::string, double>> params = {
        {"cadence_ns", static_cast<double>(cadence)}};
    report.add(label, "samples", "count", static_cast<double>(s.samples),
               std::nullopt, params, kind);
    report.add(label, "last", s.unit, static_cast<double>(s.last),
               std::nullopt, params, kind);
    report.add(label, "max", s.unit, static_cast<double>(s.max), std::nullopt,
               params, kind);
    if (s.kind == sim::Telemetry::Kind::kCounter) {
      report.add(label, "dropped", "count", static_cast<double>(s.dropped),
                 std::nullopt, params, kind);
      report.add(label, "monotone_violations", "count",
                 static_cast<double>(s.monotone_violations), std::nullopt,
                 params, kind);
    }
  }
}

inline void add_telemetry(JsonReport& report, const sim::Telemetry& t) {
  add_telemetry(report, t.summaries(), t.config().cadence);
}

// `--telemetry` arms the sampler in a bench; `--telemetry-jsonl <path>`
// additionally streams the raw series to a JSONL file for
// scripts/telemetry_report.py.
struct TelemetryArgs {
  bool enabled = false;
  std::string jsonl_path;

  TelemetryArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--telemetry") enabled = true;
      if (a == "--telemetry-jsonl" && i + 1 < argc) {
        enabled = true;
        jsonl_path = argv[++i];
      }
    }
  }

  // Writes a pre-rendered Telemetry::dump_jsonl() export when a path was
  // given. Returns false on a write failure (the bench should exit
  // nonzero: a missing artifact must not pass silently).
  bool write_jsonl(const std::string& out) const {
    if (jsonl_path.empty()) return true;
    std::FILE* f = std::fopen(jsonl_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", jsonl_path.c_str());
      return false;
    }
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    return std::fclose(f) == 0 && ok;
  }
};

}  // namespace ulnet::bench
