// Table 4 -- "Connection Setup Cost (in milliseconds)" plus the paper's
// five-component breakdown of the user-level system's Ethernet setup.
//
// Setup time is measured at the client application: connect() issued ->
// on_established, with the passive peer already listening (the paper's
// assumption). For the user-level system the registry server records the
// phase boundaries, reproducing the Section 4 cost decomposition.
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

struct Probe {
  double mean_ms = -1;
  core::RegistryServer::SetupTiming timing{};
};

Probe setup_cost(OrgType org, LinkType link) {
  Testbed bed(org, link, /*seed=*/1);
  SetupProbe probe(bed, /*rounds=*/8);
  Probe out;
  const double us = probe.run_mean_setup_us();
  out.mean_ms = us < 0 ? -1 : us / 1000.0;
  if (org == OrgType::kUserLevel) {
    out.timing = bed.user_org_a()->registry().last_setup();
  }
  return out;
}

void print_row(const char* label, double measured, double paper) {
  std::printf("%-40s %8.2f ms   (paper %4.1f ms)\n", label, measured, paper);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "bench_table4_setup", "Table 4");
  bench::heading("Table 4: connection setup cost -- measured (paper)");

  const auto ultrix_eth = setup_cost(OrgType::kInKernel, LinkType::kEthernet);
  const auto ultrix_an1 = setup_cost(OrgType::kInKernel, LinkType::kAn1);
  const auto machux_eth =
      setup_cost(OrgType::kSingleServer, LinkType::kEthernet);
  const auto ul_eth = setup_cost(OrgType::kUserLevel, LinkType::kEthernet);
  const auto ul_an1 = setup_cost(OrgType::kUserLevel, LinkType::kAn1);

  print_row("Ultrix 4.2A / Ethernet", ultrix_eth.mean_ms, 2.6);
  print_row("Ultrix 4.2A / AN1", ultrix_an1.mean_ms, 2.9);
  print_row("Mach 3.0+UX (mapped) / Ethernet", machux_eth.mean_ms, 6.8);
  print_row("User-level library / Ethernet", ul_eth.mean_ms, 11.9);
  print_row("User-level library / AN1", ul_an1.mean_ms, 12.3);

  report.add("Ultrix 4.2A / Ethernet", "setup", "ms", ultrix_eth.mean_ms, 2.6);
  report.add("Ultrix 4.2A / AN1", "setup", "ms", ultrix_an1.mean_ms, 2.9);
  report.add("Mach 3.0+UX (mapped) / Ethernet", "setup", "ms",
             machux_eth.mean_ms, 6.8);
  report.add("User-level library / Ethernet", "setup", "ms", ul_eth.mean_ms,
             11.9);
  report.add("User-level library / AN1", "setup", "ms", ul_an1.mean_ms, 12.3);

  // ---- The paper's breakdown of the ~11.9 ms Ethernet setup ----
  const auto& t = ul_eth.timing;
  const double req_ipc = sim::to_ms(t.request_received - t.request_sent);
  const double outbound = sim::to_ms(t.outbound_done - t.request_received);
  const double handshake = sim::to_ms(t.handshake_done - t.outbound_done);
  const double channel = sim::to_ms(t.channel_done - t.handshake_done);
  const double transfer = sim::to_ms(t.handoff_done - t.channel_done);

  bench::heading(
      "User-level Ethernet setup breakdown (paper Section 4 items)");
  std::printf("%-56s %8.2f ms (paper ~4.6)\n",
              "1. remote peer round trip incl. server device access",
              handshake);
  std::printf("%-56s %8.2f ms (paper ~1.5)\n",
              "2. non-overlapped outbound setup processing", outbound);
  std::printf("%-56s %8.2f ms (paper ~3.4)\n",
              "3. user channels to the network device", channel);
  std::printf("%-56s %8.2f ms (paper ~0.9 round trip)\n",
              "4. application <-> registry server IPC (one way)", req_ipc);
  std::printf("%-56s %8.2f ms (paper ~1.4)\n",
              "5. TCP state transfer to user level", transfer);
  std::printf("%-56s %8.2f ms\n", "   total (items, one-way IPC twice)",
              handshake + outbound + channel + 2 * req_ipc + transfer);

  std::printf(
      "\nShape checks: in-kernel < single server << user-level; AN1 setup"
      "\nslightly above Ethernet for the user-level system (BQI machinery);"
      "\nthe cost is per-connection and amortized across all transfers.\n");

  report.add("remote peer round trip", "setup_component", "ms", handshake,
             4.6);
  report.add("outbound setup processing", "setup_component", "ms", outbound,
             1.5);
  report.add("user channels to device", "setup_component", "ms", channel, 3.4);
  report.add("registry IPC (one way)", "setup_component", "ms", req_ipc, 0.45);
  report.add("TCP state transfer", "setup_component", "ms", transfer, 1.4);
  return report.write() ? 0 : 1;
}
