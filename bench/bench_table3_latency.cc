// Table 3 -- "Round Trip Latencies (in milliseconds)".
//
// Ping-pong between two applications: the first sends `size` bytes, the
// second returns the same amount; the average round-trip time is reported
// for 1 / 512 / 1460-byte exchanges. Connection setup is excluded
// (measured separately in Table 4).
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"
#include "core/user_level.h"
#include "net/link.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

double rtt_ms(OrgType org, LinkType link, std::size_t size) {
  Testbed bed(org, link, /*seed=*/1);
  PingPong pp(bed, size, /*rounds=*/50);
  const double us = pp.run_mean_rtt_us();
  return us < 0 ? -1 : us / 1000.0;
}

struct Row {
  const char* label;
  OrgType org;
  LinkType link;
  double paper[3];  // 1 / 512 / 1460
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "bench_table3_latency", "Table 3");
  const std::size_t sizes[3] = {1, 512, 1460};
  const Row rows[] = {
      {"Ethernet / Ultrix 4.2A", OrgType::kInKernel, LinkType::kEthernet,
       {1.6, 3.5, 6.2}},
      {"Ethernet / Mach 3.0+UX (mapped)", OrgType::kSingleServer,
       LinkType::kEthernet, {7.8, 10.8, 16.0}},
      {"Ethernet / user-level library", OrgType::kUserLevel,
       LinkType::kEthernet, {2.8, 5.2, 9.9}},
      {"AN1 / Ultrix 4.2A", OrgType::kInKernel, LinkType::kAn1,
       {1.8, 2.7, 3.2}},
      {"AN1 / user-level library", OrgType::kUserLevel, LinkType::kAn1,
       {2.7, 3.4, 4.7}},
  };

  bench::heading(
      "Table 3: TCP round-trip latency (ms) vs user packet size -- measured "
      "(paper)");
  std::printf("%-36s %24s %24s %24s\n", "System", "1 B", "512 B", "1460 B");
  for (const Row& row : rows) {
    std::printf("%-36s", row.label);
    for (int i = 0; i < 3; ++i) {
      const double m = rtt_ms(row.org, row.link, sizes[i]);
      std::printf(" %10.2f (paper %5.1f)", m, row.paper[i]);
      report.add(row.label, "rtt", "ms", m, row.paper[i],
                 {{"size", static_cast<double>(sizes[i])}});
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape checks: Ultrix < user-level < Mach/UX at every size; the"
      "\nuser-level penalty vs Ultrix is smaller on AN1 (hardware demux,"
      "\nno PIO) than on Ethernet.\n");

  // Latency provenance: one instrumented user-level/Ethernet/512 run kept
  // alive past the measurement so the per-stage residency histograms behind
  // the end-to-end RTT can be exported alongside it.
  if (report.enabled()) {
    Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/1);
    PingPong pp(bed, 512, /*rounds=*/50);
    if (pp.run_mean_rtt_us() >= 0) {
      const sim::Stats& rtts = pp.stats();
      const auto cnt = static_cast<double>(rtts.count());
      report.add("hist.app_rtt", "p50", "us", rtts.percentile(50),
                 std::nullopt, {{"count", cnt}});
      report.add("hist.app_rtt", "p90", "us", rtts.percentile(90),
                 std::nullopt, {{"count", cnt}});
      report.add("hist.app_rtt", "p99", "us", rtts.percentile(99),
                 std::nullopt, {{"count", cnt}});
      report.add("hist.app_rtt", "max", "us", rtts.max(), std::nullopt,
                 {{"count", cnt}});
      bench::add_hist(report, "hist.link.tx_wait", bed.link().tx_wait_hist());
      bench::add_hist(report, "hist.link.transit", bed.link().transit_hist());
      for (int side = 0; side < 2; ++side) {
        core::NetIoModule& n = (side == 0 ? bed.user_org_a()
                                          : bed.user_org_b())->netio(0);
        const std::string tag = side == 0 ? "a" : "b";
        bench::add_hist(report, "hist.netio." + tag + ".ring_residency",
                        n.ring_residency_hist());
        bench::add_hist(report, "hist.netio." + tag + ".wakeup_latency",
                        n.wakeup_latency_hist());
      }
      bench::add_hist(report, "hist.lib.drain_batch",
                      bed.user_app_a()->drain_batch_hist(), "pkts");
    }
  }
  return report.write() ? 0 : 1;
}
