// Ablation: hierarchical timing wheels vs a binary-heap timer, wall-clock
// (google-benchmark).
//
// The paper (Section 2.1, citing Varghese & Lauck): "practically every
// message arrival and departure involves timer operations. Once again, fast
// implementations of timer events are well known, e.g., using hierarchical
// timing wheels." TCP's pattern is schedule-then-cancel: almost every timer
// is cancelled (by the ACK) before it fires; the wheel makes both O(1).
#include <benchmark/benchmark.h>

#include "sim/rng.h"
#include "timer/wheel.h"

using namespace ulnet;

namespace {

// The TCP pattern: N connections have a standing retransmit timer; each
// "segment" cancels and re-schedules one.
template <typename Service>
void reschedule_pattern(benchmark::State& state, Service& svc) {
  const int conns = static_cast<int>(state.range(0));
  sim::Rng rng(1);
  std::vector<timer::TimerId> ids(static_cast<std::size_t>(conns));
  for (auto& id : ids) {
    id = svc.schedule(500 * sim::kMs + rng.range(0, 100) * sim::kMs, [] {});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto& slot = ids[i++ % ids.size()];
    svc.cancel(slot);
    slot = svc.schedule(500 * sim::kMs + rng.range(0, 100) * sim::kMs, [] {});
  }
}

void BM_WheelReschedule(benchmark::State& state) {
  timer::TimingWheel wheel(10 * sim::kMs);
  reschedule_pattern(state, wheel);
}
BENCHMARK(BM_WheelReschedule)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_HeapReschedule(benchmark::State& state) {
  timer::HeapTimer heap;
  reschedule_pattern(state, heap);
}
BENCHMARK(BM_HeapReschedule)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

// Advancing time with a large standing population (expiry processing).
void BM_WheelAdvance(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(2);
  timer::TimingWheel wheel(10 * sim::kMs);
  sim::Time now = 0;
  for (int i = 0; i < n; ++i) {
    wheel.schedule(rng.range(1, 5000) * sim::kMs, [] {});
  }
  for (auto _ : state) {
    now += 10 * sim::kMs;
    wheel.advance_to(now);
    // Keep the population steady.
    wheel.schedule(rng.range(1, 5000) * sim::kMs, [] {});
  }
}
BENCHMARK(BM_WheelAdvance)->Arg(256)->Arg(4096)->Arg(65536);

void BM_HeapAdvance(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(2);
  timer::HeapTimer heap;
  sim::Time now = 0;
  for (int i = 0; i < n; ++i) {
    heap.schedule(rng.range(1, 5000) * sim::kMs, [] {});
  }
  for (auto _ : state) {
    now += 10 * sim::kMs;
    heap.advance_to(now);
    heap.schedule(rng.range(1, 5000) * sim::kMs, [] {});
  }
}
BENCHMARK(BM_HeapAdvance)->Arg(256)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
