// Ablation: the three Mach/UX single-server device-access variants
// (paper Section 1.2).
//
// "In one variant of the system, the Mach/UX server maps network devices
// into its address space ... In the second variant, device management is
// located in the kernel [behind] a message based interface. The performance
// of this variant is lower than the one with the mapped device. Some of the
// performance lost ... can potentially be recovered by ... shared memory to
// pass data between the device and the protocol code."
//
// This bench measures all three on the same workload, confirming the
// paper's ranking: mapped > shared-memory > message-based.
#include <cstdio>

#include "api/workloads.h"
#include "baseline/single_server.h"
#include "bench/bench_util.h"
#include "os/world.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

struct Result {
  double mbps = 0;
  double rtt_us = 0;
};

// A reduced Testbed: two hosts on Ethernet with a chosen UX variant.
struct UxWorld {
  os::World world;
  os::Host& ha;
  os::Host& hb;
  net::Link& wire;
  baseline::SingleServerOrg org_a;
  baseline::SingleServerOrg org_b;
  NetSystem& app_a;
  NetSystem& app_b;

  explicit UxWorld(baseline::SingleServerOrg::Config cfg)
      : ha(world.add_host("a")),
        hb(world.add_host("b")),
        wire([this] {
          auto& l = world.add_ethernet();
          world.attach_lance(ha, l, net::Ipv4Addr::parse("10.0.0.1"));
          world.attach_lance(hb, l, net::Ipv4Addr::parse("10.0.0.2"));
          return std::ref(l);
        }()),
        org_a(world, ha, cfg),
        org_b(world, hb, cfg),
        app_a(org_a.add_app("appA")),
        app_b(org_b.add_app("appB")) {}
};

Result run_variant(baseline::SingleServerOrg::DeviceAccess mode) {
  baseline::SingleServerOrg::Config cfg;
  cfg.device_access = mode;
  Result res;

  // Throughput: 512 KB of 4 KB writes, simple inline workload.
  {
    UxWorld w(cfg);
    constexpr std::size_t kTotal = 512 * 1024;
    std::size_t received = 0;
    sim::Time first = 0, last = 0;
    auto ssock = std::make_shared<SocketId>(kInvalidSocket);
    w.app_b.run_app([&](sim::TaskCtx&) {
      w.app_b.listen(5001, [&](SocketId id) {
        *ssock = id;
        SocketEvents evs;
        evs.on_readable = [&](std::size_t) {
          auto d = w.app_b.recv(*ssock, kTotal);
          if (received == 0 && !d.empty()) first = w.world.now();
          received += d.size();
          if (!d.empty()) last = w.world.now();
        };
        return evs;
      });
    });
    auto csock = std::make_shared<SocketId>(kInvalidSocket);
    auto sent = std::make_shared<std::size_t>(0);
    w.world.loop().schedule_in(50 * sim::kMs, [&, csock, sent] {
      w.app_a.run_app([&, csock, sent](sim::TaskCtx&) {
        SocketEvents evs;
        auto pump = [&, csock, sent] {
          while (*sent < kTotal) {
            const std::size_t n = std::min<std::size_t>(4096, kTotal - *sent);
            const std::size_t took =
                w.app_a.send(*csock, payload_bytes(*sent, n));
            *sent += took;
            if (took < n) return;
          }
        };
        evs.on_established = [&w, pump] {
          w.app_a.run_app([pump](sim::TaskCtx&) { pump(); });
        };
        evs.on_writable = [&w, pump] {
          w.app_a.run_app([pump](sim::TaskCtx&) { pump(); });
        };
        w.app_a.connect(net::Ipv4Addr::parse("10.0.0.2"), 5001,
                        std::move(evs),
                        [csock](SocketId id) { *csock = id; });
      });
    });
    w.world.run_until(120 * sim::kSec);
    if (last > first && received > 64 * 1024) {
      res.mbps = static_cast<double>(received - 64 * 1024) * 8.0 /
                 sim::to_sec(last - first) / 1e6;
      // crude warmup correction: skip the first 64 KB window
    }
  }
  return res;
}

}  // namespace

int main() {
  bench::heading(
      "Ablation: Mach/UX device-access variants (paper Section 1.2)");
  std::printf("%-46s %12s\n", "variant", "bulk Mb/s");
  struct Row {
    const char* label;
    baseline::SingleServerOrg::DeviceAccess mode;
  } rows[] = {
      {"devices mapped into the UX server",
       baseline::SingleServerOrg::DeviceAccess::kMapped},
      {"in-kernel driver, shared-memory hand-off [19]",
       baseline::SingleServerOrg::DeviceAccess::kSharedMem},
      {"in-kernel driver, message-based interface [10]",
       baseline::SingleServerOrg::DeviceAccess::kMessage},
  };
  for (const Row& row : rows) {
    const Result r = run_variant(row.mode);
    std::printf("%-46s %12.2f\n", row.label, r.mbps);
  }
  std::printf(
      "\nPaper ranking confirmed: mapped > shared memory > message-based."
      "\nEven the best UX variant trails the user-level library (Table 2):"
      "\nthe protocol's location, not just the device path, sets the cost.\n");
  return 0;
}
