// Table 1 -- "Impact of Our Mechanisms on Throughput".
//
// The paper's micro-benchmark: two applications exchange data over the
// 10 Mb/s Ethernet *without any higher-level protocol*, exercising every
// mechanism of the user-level design -- shared ring, send capability +
// template check, specialized trap, software demultiplexing, batched
// library/kernel signalling -- and compares against the maximum achievable
// by the raw hardware with a standalone program (link saturation including
// frame format and inter-packet gaps).
#include <cstdio>

#include "api/testbed.h"
#include "bench/bench_util.h"
#include "core/user_level.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

struct RawResult {
  double mbps = 0;
  std::uint64_t received = 0;
  std::uint64_t drops = 0;
  std::uint64_t signals = 0;
  std::uint64_t suppressed = 0;
};

RawResult raw_exchange(std::size_t payload, int frames) {
  Testbed bed(OrgType::kUserLevel, LinkType::kEthernet, /*seed=*/3);
  auto* a = bed.user_app_a();
  auto* b = bed.user_app_b();
  auto& world = bed.world();

  const net::MacAddr mac_a = bed.host_a().interfaces()[0].nic->mac();
  const net::MacAddr mac_b = bed.host_b().interfaces()[0].nic->mac();

  RawResult res;
  sim::Time first = 0, last = 0;
  std::uint64_t rx_bytes = 0;

  // Receiver side: count arriving raw payloads.
  b->run_app([&](sim::TaskCtx& ctx) {
    b->open_raw(ctx, 0, net::kEtherTypeRaw, mac_a,
                [&](sim::TaskCtx&, buf::Bytes data) {
                  if (res.received == 0) first = world.now();
                  res.received++;
                  rx_bytes += data.size();
                  last = world.now();
                },
                [](core::RawChannel) {});
  });

  // Sender: one frame per task, paced at the wire's back-to-back rate (the
  // standalone saturation program does exactly this); the receiver keeps
  // up through the shared ring with batched notifications.
  const sim::Time pace = bed.link().spec().occupancy_ns(
      net::EthHeader::kSize + payload);
  auto sent = std::make_shared<int>(0);
  auto chan = std::make_shared<core::RawChannel>();
  std::function<void(sim::TaskCtx&)> pump =
      [&, sent, chan, payload, frames, pace](sim::TaskCtx& ctx) {
        if (*sent >= frames) return;
        (*sent)++;
        chan->send(ctx, buf::Bytes(payload, 0x42));
        world.loop().schedule_in(pace, [&, chan] {
          a->run_app(pump);
        });
      };
  a->run_app([&, chan](sim::TaskCtx& ctx) {
    a->open_raw(ctx, 0, net::kEtherTypeRaw, mac_b,
                [](sim::TaskCtx&, buf::Bytes) {},
                [&, chan](core::RawChannel rc) {
                  *chan = rc;
                  a->run_app(pump);
                });
  });

  world.run_until(120 * sim::kSec);

  if (last > first && res.received > 1) {
    res.mbps = static_cast<double>(rx_bytes) * 8.0 /
               sim::to_sec(last - first) / 1e6;
  }
  auto& netio_b = bed.user_org_b()->netio(0);
  res.drops = netio_b.counters().ring_drops;
  res.signals = bed.world().metrics().semaphore_signals;
  res.suppressed = netio_b.counters().signals_suppressed;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "bench_table1_mechanisms", "Table 1");
  bench::heading(
      "Table 1: impact of the user-level mechanisms on raw Ethernet "
      "throughput");

  const net::LinkSpec eth = net::LinkSpec::ethernet10();
  std::printf("%-12s %-22s %-26s %-10s\n", "payload", "standalone (link sat)",
              "with our mechanisms", "fraction");
  // The paper's micro-benchmark used maximum-sized Ethernet packets; the
  // 1024-byte row shows the approach to saturation.
  for (std::size_t payload : {1024u, 1500u}) {
    const double sat = eth.payload_saturation_bps(payload) / 1e6;
    const RawResult r = raw_exchange(payload, 3000);
    std::printf("%6zu B     %8.2f Mb/s          %8.2f Mb/s              %5.1f%%"
                "   (ring drops: %llu)\n",
                payload, sat, r.mbps, 100.0 * r.mbps / sat,
                static_cast<unsigned long long>(r.drops));
    const auto p = static_cast<double>(payload);
    report.add("standalone (link saturation)", "throughput", "Mb/s", sat,
               std::nullopt, {{"payload", p}});
    report.add("with user-level mechanisms", "throughput", "Mb/s", r.mbps,
               std::nullopt, {{"payload", p}});
    report.add("mechanism fraction of saturation", "fraction", "%",
               100.0 * r.mbps / sat, std::nullopt, {{"payload", p}});
  }

  const RawResult r = raw_exchange(1500, 3000);
  std::printf(
      "\nMechanisms exercised per packet: specialized trap, capability +"
      "\ntemplate check, software demux, shared-ring hand-off, batched"
      "\nsignalling (signals suppressed by batching: %llu of %llu"
      " deliveries).\n",
      static_cast<unsigned long long>(r.suppressed),
      static_cast<unsigned long long>(r.received));
  std::printf(
      "Paper: the mechanisms introduce 'only very modest overhead' vs the"
      "\nstandalone link saturation bound.\n");
  report.add("signals suppressed by batching", "count", "signals",
             static_cast<double>(r.suppressed), std::nullopt,
             {{"payload", 1500}, {"deliveries", static_cast<double>(r.received)}});
  return report.write() ? 0 : 1;
}
