// Ablation: copy-avoiding buffer organization (paper Section 4).
//
// "We achieve better performance than Ultrix with 512-byte user packets
// because our implementation uses a buffer organization that eliminates
// byte copying. Ultrix uses an identical mechanism, but it is invoked only
// when the user packet size is 1024 bytes or larger."
//
// This bench sweeps the monolithic stack's remap threshold (the size at
// or above which a page donation replaces the byte copy) and shows the
// user-level library's always-zero-copy shared rings alongside.
#include <cstdio>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

double ik_tput(LinkType link, std::size_t write, std::size_t threshold) {
  sim::CostModel cm;
  cm.remap_threshold = threshold;
  Testbed bed(OrgType::kInKernel, link, 1, cm);
  BulkTransfer bulk(bed, 512 * 1024, write);
  auto r = bulk.run();
  return r.ok ? r.throughput_mbps() : -1;
}

double ul_tput(LinkType link, std::size_t write) {
  Testbed bed(OrgType::kUserLevel, link, 1);
  BulkTransfer bulk(bed, 512 * 1024, write);
  auto r = bulk.run();
  return r.ok ? r.throughput_mbps() : -1;
}

}  // namespace

int main() {
  bench::heading(
      "Ablation: copy-avoidance threshold (in-kernel stack) vs zero-copy "
      "shared rings (user-level), AN1");
  std::printf("%-44s %10s %10s\n", "configuration", "512 B", "4096 B");
  const std::size_t kNever = static_cast<std::size_t>(-1);
  struct Case {
    const char* label;
    std::size_t threshold;
  } cases[] = {
      {"in-kernel, always copy (no remap)", kNever},
      {"in-kernel, remap >= 1024 (Ultrix 4.2A)", 1024},
      {"in-kernel, remap >= 512", 512},
  };
  for (const Case& c : cases) {
    std::printf("%-44s %10.2f %10.2f\n", c.label,
                ik_tput(LinkType::kAn1, 512, c.threshold),
                ik_tput(LinkType::kAn1, 4096, c.threshold));
  }
  std::printf("%-44s %10.2f %10.2f\n",
              "user-level library (zero-copy shared rings)",
              ul_tput(LinkType::kAn1, 512), ul_tput(LinkType::kAn1, 4096));
  std::printf(
      "\nReading: below the threshold every byte is copied across the"
      "\nuser/kernel boundary; lowering the threshold (or eliminating the"
      "\ncopy entirely, as the shared rings do) recovers small-packet"
      "\nthroughput -- the effect behind the paper's AN1 512-byte column.\n");
  return 0;
}
