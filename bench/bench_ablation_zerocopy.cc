// Ablation: zero-copy / selective-copy data path (paper Section 4).
//
// "We achieve better performance than Ultrix with 512-byte user packets
// because our implementation uses a buffer organization that eliminates
// byte copying."
//
// Two row families per organization, same bulk workload:
//
//   model/  -- knob idealizations: what would eliminating the payload copy
//              buy if the copy were simply free? (in-kernel: remap
//              threshold; single-server: IPC per-byte rate; user-level:
//              the payload-copy charge gate with the rate zeroed)
//   real/   -- the actual mechanisms: page donation at the user/kernel
//              boundary, out-of-line IPC, and the library's loaned RX
//              buffers + template-gated gathered TX.
//
// A real mechanism still pays its machinery (VM remaps, OOL descriptors,
// loan bookkeeping), so per organization real/zc must not beat model/zc;
// and on the user-level path the measured copy elision must show up in the
// counters: payload_bytes_copied collapses to ~0 while the loan census
// returns to zero at exit.
#include <cstdio>
#include <cstring>
#include <string>

#include "api/testbed.h"
#include "api/workloads.h"
#include "bench/bench_util.h"

using namespace ulnet;
using namespace ulnet::api;

namespace {

constexpr std::size_t kWrite = 1460;  // one MSS per write: no chunk spans
constexpr std::size_t kNever = static_cast<std::size_t>(-1);

struct RunOut {
  double tput = -1;
  double payload_copied = 0;
  double payload_elided = 0;
  double tx_gather_frames = 0;
  double loans_outstanding = 0;
  double loan_high_water = 0;
  sim::Histogram loan_residency;
};

void fill_counters(Testbed& bed, RunOut& out) {
  const sim::Metrics& m = bed.world().metrics();
  out.payload_copied = static_cast<double>(m.payload_bytes_copied);
  out.payload_elided = static_cast<double>(m.payload_bytes_elided);
  out.tx_gather_frames = static_cast<double>(m.tx_gather_frames);
  out.loans_outstanding = static_cast<double>(m.loans_outstanding);
  out.loan_high_water = static_cast<double>(m.loan_high_water);
  out.loan_residency = bed.world().pool().loan_residency();
}

RunOut run_ik(std::size_t total, std::size_t threshold, bool zero_copy) {
  sim::CostModel cm;
  cm.remap_threshold = threshold;
  Testbed bed(OrgType::kInKernel, LinkType::kAn1, 1, cm);
  if (zero_copy) {
    bed.ik_org_a()->set_zero_copy(true);
    bed.ik_org_b()->set_zero_copy(true);
  }
  BulkTransfer bulk(bed, total, kWrite);
  auto r = bulk.run();
  RunOut out;
  out.tput = r.ok ? r.throughput_mbps() : -1;
  fill_counters(bed, out);
  return out;
}

RunOut run_ss(std::size_t total, sim::Time ipc_per_byte, bool zero_copy) {
  sim::CostModel cm;
  cm.mach_ipc_per_byte = ipc_per_byte;
  Testbed bed(OrgType::kSingleServer, LinkType::kAn1, 1, cm);
  if (zero_copy) {
    bed.ss_org_a()->set_zero_copy(true);
    bed.ss_org_b()->set_zero_copy(true);
  }
  BulkTransfer bulk(bed, total, kWrite);
  auto r = bulk.run();
  RunOut out;
  out.tput = r.ok ? r.throughput_mbps() : -1;
  fill_counters(bed, out);
  return out;
}

RunOut run_ul(std::size_t total, sim::Time payload_rate, bool mechanisms) {
  sim::CostModel cm;
  cm.payload_copy_per_byte = payload_rate;
  Testbed bed(OrgType::kUserLevel, LinkType::kAn1, 1, cm);
  // Copy charging on for every user-level row: the gate is what makes the
  // counted copy sites cost simulated time, so both the knob model and the
  // real mechanism move the same dial.
  bed.user_app_a()->env().set_copy_charging(true);
  bed.user_app_b()->env().set_copy_charging(true);
  if (mechanisms) {
    bed.user_org_a()->set_zero_copy(true);
    bed.user_org_b()->set_zero_copy(true);
    proto::TcpConfig zc = bed.app_a().tcp_config();
    zc.rx_byref = true;
    zc.tx_gather = true;
    bed.app_a().set_tcp_config(zc);
    bed.app_b().set_tcp_config(zc);
  }
  BulkTransfer bulk(bed, total, kWrite, 5001, /*verify_data=*/true);
  bulk.set_zc_recv(mechanisms);
  auto r = bulk.run();
  RunOut out;
  out.tput = (r.ok && r.data_valid) ? r.throughput_mbps() : -1;
  fill_counters(bed, out);
  return out;
}

bool check(bool cond, const char* what) {
  if (!cond) std::fprintf(stderr, "FAIL: %s\n", what);
  return cond;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t total = quick ? 256 * 1024 : 512 * 1024;

  bench::JsonReport report(argc, argv, "bench_ablation_zerocopy",
                           "Section 4 (copy elision)");

  bench::heading(
      "Ablation: copy elision -- knob models vs real mechanisms, AN1");
  std::printf("%-34s %12s %14s %14s\n", "row", "Mb/s", "payload copied",
              "payload elided");
  auto emit = [&](const char* label, const RunOut& r) {
    std::printf("%-34s %12.2f %14.0f %14.0f\n", label, r.tput,
                r.payload_copied, r.payload_elided);
    report.add(label, "throughput", "Mb/s", r.tput, std::nullopt,
               {{"write_size", static_cast<double>(kWrite)},
                {"total_bytes", static_cast<double>(total)}},
               "simulated");
  };

  // In-kernel: the knob is the copy-avoidance threshold; the mechanism is
  // unconditional page donation at the boundary.
  const RunOut ik_copy = run_ik(total, kNever, false);
  const RunOut ik_model = run_ik(total, 0, false);
  const RunOut ik_real = run_ik(total, kNever, true);
  emit("model/ik/copy", ik_copy);
  emit("model/ik/zc", ik_model);
  emit("real/ik/copy", ik_copy);
  emit("real/ik/zc", ik_real);

  // Single-server: the knob zeroes the IPC per-byte rate; the mechanism is
  // out-of-line transfer on the data-bearing IPCs.
  const sim::Time kIpcRate = sim::CostModel{}.mach_ipc_per_byte;
  const RunOut ss_copy = run_ss(total, kIpcRate, false);
  const RunOut ss_model = run_ss(total, 0, false);
  const RunOut ss_real = run_ss(total, kIpcRate, true);
  emit("model/ss/copy", ss_copy);
  emit("model/ss/zc", ss_model);
  emit("real/ss/copy", ss_copy);
  emit("real/ss/zc", ss_real);

  // User-level: the knob zeroes the payload-copy charge; the mechanism is
  // loaned RX delivery + by-reference TCP + gathered TX + a recv_zc sink.
  const sim::Time kPayloadRate = sim::CostModel{}.payload_copy_per_byte;
  const RunOut ul_copy = run_ul(total, kPayloadRate, false);
  const RunOut ul_model = run_ul(total, 0, false);
  const RunOut ul_real = run_ul(total, kPayloadRate, true);
  emit("model/ul/copy", ul_copy);
  emit("model/ul/zc", ul_model);
  emit("real/ul/copy", ul_copy);
  emit("real/ul/zc", ul_real);

  // Loan census and elision counters from the real user-level zero-copy run.
  report.add("zc/ul", "payload_bytes_copied", "bytes", ul_real.payload_copied,
             std::nullopt, {}, "simulated");
  report.add("zc/ul", "payload_bytes_elided", "bytes", ul_real.payload_elided,
             std::nullopt, {}, "simulated");
  report.add("zc/ul", "tx_gather_frames", "frames", ul_real.tx_gather_frames,
             std::nullopt, {}, "simulated");
  report.add("zc/ul", "loan_high_water", "loans", ul_real.loan_high_water,
             std::nullopt, {}, "simulated");
  report.add("zc/ul", "loans_outstanding", "loans", ul_real.loans_outstanding,
             std::nullopt, {}, "simulated");
  bench::add_hist(report, "hist.loan_residency", ul_real.loan_residency);

  std::printf(
      "\nReading: each model row prices the copy at zero by knob; each real"
      "\nrow runs the organization's actual elision mechanism and pays its"
      "\nmachinery, so real never beats model. On the user-level path the"
      "\nloaned rings + gathered TX turn nearly every counted payload copy"
      "\ninto an elision while the loan table drains back to zero.\n");

  bool ok = true;
  // The real mechanism cannot beat the free-copy idealization (small slack:
  // the two paths schedule events differently).
  ok &= check(ik_real.tput <= ik_model.tput * 1.02, "real/ik/zc > model/ik/zc");
  ok &= check(ss_real.tput <= ss_model.tput * 1.02, "real/ss/zc > model/ss/zc");
  ok &= check(ul_real.tput <= ul_model.tput * 1.02, "real/ul/zc > model/ul/zc");
  // The opt-in path must be a measured win over the charged copy path.
  ok &= check(ul_real.tput > ul_copy.tput,
              "user-level zero-copy not faster than the copy path");
  ok &= check(ik_real.tput > ik_copy.tput,
              "in-kernel donation not faster than the copy path");
  ok &= check(ss_real.tput > ss_copy.tput,
              "single-server OOL not faster than the copy path");
  // Measured elision: payload copies collapse, loans all come home.
  ok &= check(ul_real.payload_copied < ul_copy.payload_copied / 100.0,
              "payload_bytes_copied did not collapse on the zero-copy path");
  ok &= check(ul_real.payload_elided > 0, "no payload bytes elided");
  ok &= check(ul_real.tx_gather_frames > 0, "no gathered frames transmitted");
  ok &= check(ul_real.loan_high_water > 0, "no loans ever outstanding");
  ok &= check(ul_real.loans_outstanding == 0, "loans outstanding at exit");
  ok &= check(ul_copy.tput > 0 && ul_model.tput > 0 && ik_copy.tput > 0 &&
                  ik_model.tput > 0 && ss_copy.tput > 0 && ss_model.tput > 0,
              "a baseline run failed");

  if (!report.write()) return 1;
  return ok ? 0 : 1;
}
