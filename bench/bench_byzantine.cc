// Byzantine exhibit: one adversarial tenant vs one honest victim stream.
//
// Picks the attacker kind from the seed (hoarder, starver, forger, flooder,
// wakeup-spammer), runs the canonical byzantine scenario (api/adversary.h)
// with per-tenant policing on, and checks (a) every isolation invariant --
// the victim stream delivers byte-exact data at >= half its solo
// throughput, nothing forged reaches the wire, the policer counters that
// should fire did fire, and killing the attacker leaves no unreclaimable
// channel or loan -- and (b) replay identity: the attack run and its replay
// produce the same fingerprint. Exits nonzero on any violation, so
// scripts/run_chaos.py can sweep seeds and ctest can gate.
//
//   bench_byzantine [--seed N] [--an1] [--json <path>]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/adversary.h"
#include "bench/bench_util.h"

using namespace ulnet;

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  api::LinkType link = api::LinkType::kEthernet;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--an1") == 0) {
      link = api::LinkType::kAn1;
    }
  }

  // Seed picks the adversary so a seed sweep covers every kind.
  static const api::AdversaryKind kKinds[] = {
      api::AdversaryKind::kHoarder, api::AdversaryKind::kStarver,
      api::AdversaryKind::kForger, api::AdversaryKind::kFlooder,
      api::AdversaryKind::kSpammer};
  const api::AdversaryKind kind = kKinds[seed % 5];

  bench::heading("Byzantine: adversarial tenant '" +
                 std::string(api::to_string(kind)) + "', seed " +
                 std::to_string(seed) +
                 (link == api::LinkType::kAn1 ? " (AN1)" : " (Ethernet)"));

  // Solo baseline: same topology and policing, attacker idle. Its
  // throughput anchors the fairness floor for the attack run.
  api::ByzantineScenarioConfig cfg;
  cfg.seed = seed;
  cfg.link = link;
  cfg.policing = true;
  cfg.attacker = api::AdversaryKind::kNone;
  const api::ByzantineReport solo = api::run_byzantine_scenario(cfg);

  cfg.attacker = kind;
  cfg.solo_mbps = solo.victim_mbps;
  const api::ByzantineReport rep = api::run_byzantine_scenario(cfg);
  const api::ByzantineReport replay = api::run_byzantine_scenario(cfg);
  const bool replay_ok = rep.fingerprint == replay.fingerprint;

  bench::row_header({"invariant", "value"});
  std::printf("%-34s%s\n", "victim stream + data valid",
              rep.bulk_ok && rep.bulk_data_valid ? "yes" : "NO");
  std::printf("%-34s%.2f Mb/s (solo %.2f, floor %.0f%%)\n", "victim throughput",
              rep.victim_mbps, rep.solo_mbps,
              rep.min_victim_fraction * 100.0);
  std::printf("%-34s%llu on wire, %llu refused\n", "forged frames",
              static_cast<unsigned long long>(rep.forged_frames_on_wire),
              static_cast<unsigned long long>(rep.forge_refused));
  std::printf("%-34s%llu policed, %llu ring quota, %llu loan budget\n",
              "tenant policer",
              static_cast<unsigned long long>(rep.tenant_tx_policed),
              static_cast<unsigned long long>(rep.tenant_ring_quota_hits),
              static_cast<unsigned long long>(rep.tenant_loan_budget_hits));
  std::printf("%-34s%llu strikes, %llu quarantines\n", "forgery response",
              static_cast<unsigned long long>(rep.forgery_strikes),
              static_cast<unsigned long long>(rep.tenant_quarantines));
  std::printf("%-34s%s, %zu hoarded at kill, %zu channels left, %llu loans\n",
              "attacker teardown", rep.attacker_killed ? "killed" : "alive",
              rep.hoarded_peak, rep.attacker_channels_left,
              static_cast<unsigned long long>(rep.loans_outstanding_end));
  std::printf("%-34s%llu loans, %llu quarantined channels\n",
              "registry reclaimed",
              static_cast<unsigned long long>(rep.loans_reclaimed),
              static_cast<unsigned long long>(rep.channels_quarantined));
  std::printf("%-34s%016llx %s\n", "replay fingerprint",
              static_cast<unsigned long long>(rep.fingerprint),
              replay_ok ? "(replay matches)" : "(REPLAY DIVERGED)");
  std::printf("fault census: %s\n", rep.fault_census.c_str());

  bench::JsonReport json(argc, argv, "bench_byzantine", "Byzantine");
  const auto b01 = [](bool v) { return v ? 1.0 : 0.0; };
  std::vector<std::pair<std::string, double>> params = {
      {"seed", static_cast<double>(seed)},
      {"an1", link == api::LinkType::kAn1 ? 1.0 : 0.0},
      {"attacker", static_cast<double>(seed % 5)}};
  json.add("victim", "bulk_ok", "bool",
           b01(rep.bulk_ok && rep.bulk_data_valid), std::nullopt, params);
  json.add("victim", "victim_mbps", "Mb/s", rep.victim_mbps, std::nullopt,
           params);
  json.add("victim", "solo_mbps", "Mb/s", rep.solo_mbps, std::nullopt, params);
  json.add("wire", "forged_frames_on_wire", "count",
           static_cast<double>(rep.forged_frames_on_wire), std::nullopt,
           params);
  json.add("policer", "tenant_tx_policed", "count",
           static_cast<double>(rep.tenant_tx_policed), std::nullopt, params);
  json.add("policer", "tenant_ring_quota_hits", "count",
           static_cast<double>(rep.tenant_ring_quota_hits), std::nullopt,
           params);
  json.add("policer", "tenant_loan_budget_hits", "count",
           static_cast<double>(rep.tenant_loan_budget_hits), std::nullopt,
           params);
  json.add("policer", "forgery_strikes", "count",
           static_cast<double>(rep.forgery_strikes), std::nullopt, params);
  json.add("policer", "tenant_quarantines", "count",
           static_cast<double>(rep.tenant_quarantines), std::nullopt, params);
  json.add("teardown", "attacker_channels_left", "count",
           static_cast<double>(rep.attacker_channels_left), std::nullopt,
           params);
  json.add("teardown", "loans_outstanding", "count",
           static_cast<double>(rep.loans_outstanding_end), std::nullopt,
           params);
  json.add("replay", "fingerprint_match", "bool", b01(replay_ok), std::nullopt,
           params);
  if (!json.write()) return 2;

  const std::string solo_fail = solo.failure();
  if (!solo_fail.empty()) {
    std::fprintf(stderr, "FAIL (seed %llu, solo): %s\n",
                 static_cast<unsigned long long>(seed), solo_fail.c_str());
    return 1;
  }
  const std::string fail = rep.failure();
  if (!fail.empty()) {
    std::fprintf(stderr, "FAIL (seed %llu, %s): %s\n",
                 static_cast<unsigned long long>(seed), api::to_string(kind),
                 fail.c_str());
    return 1;
  }
  if (!replay_ok) {
    std::fprintf(stderr,
                 "FAIL (seed %llu): replay diverged (%016llx vs %016llx)\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(rep.fingerprint),
                 static_cast<unsigned long long>(replay.fingerprint));
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
