# Empty compiler generated dependencies file for ulnet_buf.
# This may be replaced when dependencies are built.
