file(REMOVE_RECURSE
  "CMakeFiles/ulnet_buf.dir/bytes.cc.o"
  "CMakeFiles/ulnet_buf.dir/bytes.cc.o.d"
  "CMakeFiles/ulnet_buf.dir/checksum.cc.o"
  "CMakeFiles/ulnet_buf.dir/checksum.cc.o.d"
  "libulnet_buf.a"
  "libulnet_buf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulnet_buf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
