file(REMOVE_RECURSE
  "libulnet_buf.a"
)
