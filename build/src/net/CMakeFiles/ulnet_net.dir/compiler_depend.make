# Empty compiler generated dependencies file for ulnet_net.
# This may be replaced when dependencies are built.
