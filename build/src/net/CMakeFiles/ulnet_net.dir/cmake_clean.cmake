file(REMOVE_RECURSE
  "CMakeFiles/ulnet_net.dir/addr.cc.o"
  "CMakeFiles/ulnet_net.dir/addr.cc.o.d"
  "CMakeFiles/ulnet_net.dir/frame.cc.o"
  "CMakeFiles/ulnet_net.dir/frame.cc.o.d"
  "CMakeFiles/ulnet_net.dir/link.cc.o"
  "CMakeFiles/ulnet_net.dir/link.cc.o.d"
  "CMakeFiles/ulnet_net.dir/pcap.cc.o"
  "CMakeFiles/ulnet_net.dir/pcap.cc.o.d"
  "libulnet_net.a"
  "libulnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
