file(REMOVE_RECURSE
  "libulnet_net.a"
)
