file(REMOVE_RECURSE
  "libulnet_hw.a"
)
