# Empty compiler generated dependencies file for ulnet_hw.
# This may be replaced when dependencies are built.
