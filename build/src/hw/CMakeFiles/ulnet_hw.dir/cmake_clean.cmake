file(REMOVE_RECURSE
  "CMakeFiles/ulnet_hw.dir/nic.cc.o"
  "CMakeFiles/ulnet_hw.dir/nic.cc.o.d"
  "libulnet_hw.a"
  "libulnet_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulnet_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
