# Empty compiler generated dependencies file for ulnet_core.
# This may be replaced when dependencies are built.
