
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/exec_env.cc" "src/core/CMakeFiles/ulnet_core.dir/exec_env.cc.o" "gcc" "src/core/CMakeFiles/ulnet_core.dir/exec_env.cc.o.d"
  "/root/repo/src/core/netio_module.cc" "src/core/CMakeFiles/ulnet_core.dir/netio_module.cc.o" "gcc" "src/core/CMakeFiles/ulnet_core.dir/netio_module.cc.o.d"
  "/root/repo/src/core/registry_server.cc" "src/core/CMakeFiles/ulnet_core.dir/registry_server.cc.o" "gcc" "src/core/CMakeFiles/ulnet_core.dir/registry_server.cc.o.d"
  "/root/repo/src/core/user_level.cc" "src/core/CMakeFiles/ulnet_core.dir/user_level.cc.o" "gcc" "src/core/CMakeFiles/ulnet_core.dir/user_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/ulnet_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/ulnet_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ulnet_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ulnet_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ulnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/ulnet_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/buf/CMakeFiles/ulnet_buf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ulnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
