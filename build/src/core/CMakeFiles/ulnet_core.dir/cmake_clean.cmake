file(REMOVE_RECURSE
  "CMakeFiles/ulnet_core.dir/exec_env.cc.o"
  "CMakeFiles/ulnet_core.dir/exec_env.cc.o.d"
  "CMakeFiles/ulnet_core.dir/netio_module.cc.o"
  "CMakeFiles/ulnet_core.dir/netio_module.cc.o.d"
  "CMakeFiles/ulnet_core.dir/registry_server.cc.o"
  "CMakeFiles/ulnet_core.dir/registry_server.cc.o.d"
  "CMakeFiles/ulnet_core.dir/user_level.cc.o"
  "CMakeFiles/ulnet_core.dir/user_level.cc.o.d"
  "libulnet_core.a"
  "libulnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
