file(REMOVE_RECURSE
  "libulnet_core.a"
)
