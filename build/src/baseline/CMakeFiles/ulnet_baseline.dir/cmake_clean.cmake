file(REMOVE_RECURSE
  "CMakeFiles/ulnet_baseline.dir/inkernel.cc.o"
  "CMakeFiles/ulnet_baseline.dir/inkernel.cc.o.d"
  "CMakeFiles/ulnet_baseline.dir/single_server.cc.o"
  "CMakeFiles/ulnet_baseline.dir/single_server.cc.o.d"
  "libulnet_baseline.a"
  "libulnet_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulnet_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
