# Empty compiler generated dependencies file for ulnet_baseline.
# This may be replaced when dependencies are built.
