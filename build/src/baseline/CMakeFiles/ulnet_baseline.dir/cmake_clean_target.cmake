file(REMOVE_RECURSE
  "libulnet_baseline.a"
)
