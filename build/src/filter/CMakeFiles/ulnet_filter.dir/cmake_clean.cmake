file(REMOVE_RECURSE
  "CMakeFiles/ulnet_filter.dir/filter.cc.o"
  "CMakeFiles/ulnet_filter.dir/filter.cc.o.d"
  "libulnet_filter.a"
  "libulnet_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulnet_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
