file(REMOVE_RECURSE
  "libulnet_filter.a"
)
