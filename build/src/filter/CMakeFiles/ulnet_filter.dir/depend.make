# Empty dependencies file for ulnet_filter.
# This may be replaced when dependencies are built.
