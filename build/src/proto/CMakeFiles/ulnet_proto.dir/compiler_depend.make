# Empty compiler generated dependencies file for ulnet_proto.
# This may be replaced when dependencies are built.
