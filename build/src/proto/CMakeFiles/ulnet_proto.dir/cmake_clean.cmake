file(REMOVE_RECURSE
  "CMakeFiles/ulnet_proto.dir/arp.cc.o"
  "CMakeFiles/ulnet_proto.dir/arp.cc.o.d"
  "CMakeFiles/ulnet_proto.dir/icmp.cc.o"
  "CMakeFiles/ulnet_proto.dir/icmp.cc.o.d"
  "CMakeFiles/ulnet_proto.dir/ip.cc.o"
  "CMakeFiles/ulnet_proto.dir/ip.cc.o.d"
  "CMakeFiles/ulnet_proto.dir/rrp.cc.o"
  "CMakeFiles/ulnet_proto.dir/rrp.cc.o.d"
  "CMakeFiles/ulnet_proto.dir/tcp.cc.o"
  "CMakeFiles/ulnet_proto.dir/tcp.cc.o.d"
  "CMakeFiles/ulnet_proto.dir/udp.cc.o"
  "CMakeFiles/ulnet_proto.dir/udp.cc.o.d"
  "CMakeFiles/ulnet_proto.dir/wire.cc.o"
  "CMakeFiles/ulnet_proto.dir/wire.cc.o.d"
  "libulnet_proto.a"
  "libulnet_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulnet_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
