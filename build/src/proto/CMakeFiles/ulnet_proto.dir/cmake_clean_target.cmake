file(REMOVE_RECURSE
  "libulnet_proto.a"
)
