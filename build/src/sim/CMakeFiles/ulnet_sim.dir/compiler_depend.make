# Empty compiler generated dependencies file for ulnet_sim.
# This may be replaced when dependencies are built.
