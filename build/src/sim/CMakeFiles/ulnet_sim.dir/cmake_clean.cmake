file(REMOVE_RECURSE
  "CMakeFiles/ulnet_sim.dir/cpu.cc.o"
  "CMakeFiles/ulnet_sim.dir/cpu.cc.o.d"
  "CMakeFiles/ulnet_sim.dir/event_loop.cc.o"
  "CMakeFiles/ulnet_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/ulnet_sim.dir/metrics.cc.o"
  "CMakeFiles/ulnet_sim.dir/metrics.cc.o.d"
  "CMakeFiles/ulnet_sim.dir/rng.cc.o"
  "CMakeFiles/ulnet_sim.dir/rng.cc.o.d"
  "CMakeFiles/ulnet_sim.dir/stats.cc.o"
  "CMakeFiles/ulnet_sim.dir/stats.cc.o.d"
  "libulnet_sim.a"
  "libulnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
