file(REMOVE_RECURSE
  "libulnet_sim.a"
)
