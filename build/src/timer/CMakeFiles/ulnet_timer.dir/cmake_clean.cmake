file(REMOVE_RECURSE
  "CMakeFiles/ulnet_timer.dir/wheel.cc.o"
  "CMakeFiles/ulnet_timer.dir/wheel.cc.o.d"
  "libulnet_timer.a"
  "libulnet_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulnet_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
