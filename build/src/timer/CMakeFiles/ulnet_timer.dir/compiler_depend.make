# Empty compiler generated dependencies file for ulnet_timer.
# This may be replaced when dependencies are built.
