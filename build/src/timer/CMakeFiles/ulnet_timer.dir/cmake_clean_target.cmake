file(REMOVE_RECURSE
  "libulnet_timer.a"
)
