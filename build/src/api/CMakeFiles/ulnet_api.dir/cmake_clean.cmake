file(REMOVE_RECURSE
  "CMakeFiles/ulnet_api.dir/testbed.cc.o"
  "CMakeFiles/ulnet_api.dir/testbed.cc.o.d"
  "CMakeFiles/ulnet_api.dir/workloads.cc.o"
  "CMakeFiles/ulnet_api.dir/workloads.cc.o.d"
  "libulnet_api.a"
  "libulnet_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulnet_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
