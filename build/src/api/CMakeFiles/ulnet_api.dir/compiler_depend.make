# Empty compiler generated dependencies file for ulnet_api.
# This may be replaced when dependencies are built.
