file(REMOVE_RECURSE
  "libulnet_api.a"
)
