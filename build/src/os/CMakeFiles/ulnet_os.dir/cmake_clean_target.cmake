file(REMOVE_RECURSE
  "libulnet_os.a"
)
