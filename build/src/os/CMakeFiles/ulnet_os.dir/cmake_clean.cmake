file(REMOVE_RECURSE
  "CMakeFiles/ulnet_os.dir/kernel.cc.o"
  "CMakeFiles/ulnet_os.dir/kernel.cc.o.d"
  "libulnet_os.a"
  "libulnet_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ulnet_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
