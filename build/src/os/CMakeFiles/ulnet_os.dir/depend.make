# Empty dependencies file for ulnet_os.
# This may be replaced when dependencies are built.
