# Empty dependencies file for multi_protocol.
# This may be replaced when dependencies are built.
