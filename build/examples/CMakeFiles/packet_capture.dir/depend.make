# Empty dependencies file for packet_capture.
# This may be replaced when dependencies are built.
