file(REMOVE_RECURSE
  "CMakeFiles/packet_capture.dir/packet_capture.cpp.o"
  "CMakeFiles/packet_capture.dir/packet_capture.cpp.o.d"
  "packet_capture"
  "packet_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
