file(REMOVE_RECURSE
  "CMakeFiles/app_specialization.dir/app_specialization.cpp.o"
  "CMakeFiles/app_specialization.dir/app_specialization.cpp.o.d"
  "app_specialization"
  "app_specialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
