# Empty dependencies file for app_specialization.
# This may be replaced when dependencies are built.
