file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_appknow.dir/bench_ablation_appknow.cc.o"
  "CMakeFiles/bench_ablation_appknow.dir/bench_ablation_appknow.cc.o.d"
  "bench_ablation_appknow"
  "bench_ablation_appknow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_appknow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
