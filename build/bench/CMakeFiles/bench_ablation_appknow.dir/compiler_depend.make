# Empty compiler generated dependencies file for bench_ablation_appknow.
# This may be replaced when dependencies are built.
