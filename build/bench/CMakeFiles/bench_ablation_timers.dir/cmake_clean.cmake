file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timers.dir/bench_ablation_timers.cc.o"
  "CMakeFiles/bench_ablation_timers.dir/bench_ablation_timers.cc.o.d"
  "bench_ablation_timers"
  "bench_ablation_timers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
