file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_demux.dir/bench_table5_demux.cc.o"
  "CMakeFiles/bench_table5_demux.dir/bench_table5_demux.cc.o.d"
  "bench_table5_demux"
  "bench_table5_demux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_demux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
