# Empty dependencies file for bench_motivation_protocols.
# This may be replaced when dependencies are built.
