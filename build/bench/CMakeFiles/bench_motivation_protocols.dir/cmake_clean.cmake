file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_protocols.dir/bench_motivation_protocols.cc.o"
  "CMakeFiles/bench_motivation_protocols.dir/bench_motivation_protocols.cc.o.d"
  "bench_motivation_protocols"
  "bench_motivation_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
