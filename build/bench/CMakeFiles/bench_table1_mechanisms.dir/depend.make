# Empty dependencies file for bench_table1_mechanisms.
# This may be replaced when dependencies are built.
