file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mechanisms.dir/bench_table1_mechanisms.cc.o"
  "CMakeFiles/bench_table1_mechanisms.dir/bench_table1_mechanisms.cc.o.d"
  "bench_table1_mechanisms"
  "bench_table1_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
