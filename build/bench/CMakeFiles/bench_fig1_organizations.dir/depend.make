# Empty dependencies file for bench_fig1_organizations.
# This may be replaced when dependencies are built.
