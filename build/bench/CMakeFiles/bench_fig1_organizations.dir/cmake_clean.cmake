file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_organizations.dir/bench_fig1_organizations.cc.o"
  "CMakeFiles/bench_fig1_organizations.dir/bench_fig1_organizations.cc.o.d"
  "bench_fig1_organizations"
  "bench_fig1_organizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_organizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
