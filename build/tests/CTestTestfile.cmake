# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_buf[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_filter[1]_include.cmake")
include("/root/repo/build/tests/test_timer[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_tcp_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_rrp[1]_include.cmake")
include("/root/repo/build/tests/test_tcp_edge[1]_include.cmake")
include("/root/repo/build/tests/test_tcp_congestion[1]_include.cmake")
include("/root/repo/build/tests/test_netio[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_pcap[1]_include.cmake")
include("/root/repo/build/tests/test_orgs[1]_include.cmake")
include("/root/repo/build/tests/test_user_level[1]_include.cmake")
