file(REMOVE_RECURSE
  "CMakeFiles/test_rrp.dir/test_rrp.cc.o"
  "CMakeFiles/test_rrp.dir/test_rrp.cc.o.d"
  "test_rrp"
  "test_rrp.pdb"
  "test_rrp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
