# Empty compiler generated dependencies file for test_rrp.
# This may be replaced when dependencies are built.
