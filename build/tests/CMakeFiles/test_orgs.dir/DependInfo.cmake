
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_orgs.cc" "tests/CMakeFiles/test_orgs.dir/test_orgs.cc.o" "gcc" "tests/CMakeFiles/test_orgs.dir/test_orgs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/ulnet_api.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ulnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ulnet_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ulnet_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/ulnet_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/ulnet_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ulnet_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ulnet_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ulnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/buf/CMakeFiles/ulnet_buf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ulnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
