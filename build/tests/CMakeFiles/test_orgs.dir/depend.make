# Empty dependencies file for test_orgs.
# This may be replaced when dependencies are built.
