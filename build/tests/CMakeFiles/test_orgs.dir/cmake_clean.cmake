file(REMOVE_RECURSE
  "CMakeFiles/test_orgs.dir/test_orgs.cc.o"
  "CMakeFiles/test_orgs.dir/test_orgs.cc.o.d"
  "test_orgs"
  "test_orgs.pdb"
  "test_orgs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
