file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_congestion.dir/test_tcp_congestion.cc.o"
  "CMakeFiles/test_tcp_congestion.dir/test_tcp_congestion.cc.o.d"
  "test_tcp_congestion"
  "test_tcp_congestion.pdb"
  "test_tcp_congestion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
