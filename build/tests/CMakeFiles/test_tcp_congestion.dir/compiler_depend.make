# Empty compiler generated dependencies file for test_tcp_congestion.
# This may be replaced when dependencies are built.
