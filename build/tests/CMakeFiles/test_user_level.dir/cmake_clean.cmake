file(REMOVE_RECURSE
  "CMakeFiles/test_user_level.dir/test_user_level.cc.o"
  "CMakeFiles/test_user_level.dir/test_user_level.cc.o.d"
  "test_user_level"
  "test_user_level.pdb"
  "test_user_level[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_user_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
