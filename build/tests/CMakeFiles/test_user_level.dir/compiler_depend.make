# Empty compiler generated dependencies file for test_user_level.
# This may be replaced when dependencies are built.
