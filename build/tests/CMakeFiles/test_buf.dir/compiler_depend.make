# Empty compiler generated dependencies file for test_buf.
# This may be replaced when dependencies are built.
