file(REMOVE_RECURSE
  "CMakeFiles/test_buf.dir/test_bytes.cc.o"
  "CMakeFiles/test_buf.dir/test_bytes.cc.o.d"
  "CMakeFiles/test_buf.dir/test_checksum.cc.o"
  "CMakeFiles/test_buf.dir/test_checksum.cc.o.d"
  "test_buf"
  "test_buf.pdb"
  "test_buf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
