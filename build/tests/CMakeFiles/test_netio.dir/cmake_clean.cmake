file(REMOVE_RECURSE
  "CMakeFiles/test_netio.dir/test_netio.cc.o"
  "CMakeFiles/test_netio.dir/test_netio.cc.o.d"
  "test_netio"
  "test_netio.pdb"
  "test_netio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
