# Empty dependencies file for test_netio.
# This may be replaced when dependencies are built.
