file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/test_addr.cc.o"
  "CMakeFiles/test_net.dir/test_addr.cc.o.d"
  "CMakeFiles/test_net.dir/test_frame.cc.o"
  "CMakeFiles/test_net.dir/test_frame.cc.o.d"
  "CMakeFiles/test_net.dir/test_link.cc.o"
  "CMakeFiles/test_net.dir/test_link.cc.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
