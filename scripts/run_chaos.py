#!/usr/bin/env python3
"""Seed-sweep driver for the chaos exhibit.

Runs bench_chaos once per seed (each invocation itself runs the scenario
twice and checks replay identity) and aggregates pass/fail across the
sweep. Ethernet and AN1 alternate by default so both datapaths -- software
demultiplexing and hardware BQI rings -- see every fault kind.

    python3 scripts/run_chaos.py --bench build/bench/bench_chaos --seeds 8
    python3 scripts/run_chaos.py --bench ... --seeds 64 --start 100 --an1 only

No third-party dependencies; stdlib only.
"""
from __future__ import annotations

import argparse
import subprocess
import sys


def run_one(bench: str, seed: int, an1: bool, timeout: float) -> tuple[bool, str]:
    cmd = [bench, "--seed", str(seed)]
    if an1:
        cmd.append("--an1")
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=timeout, check=False
        )
    except subprocess.TimeoutExpired:
        return False, "timeout"
    except OSError as e:
        return False, f"exec failed: {e}"
    if proc.returncode == 0:
        return True, ""
    detail = proc.stderr.strip().splitlines()
    return False, detail[-1] if detail else f"exit {proc.returncode}"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True, help="path to bench_chaos binary")
    ap.add_argument("--seeds", type=int, default=8, help="number of seeds to sweep")
    ap.add_argument("--start", type=int, default=1, help="first seed")
    ap.add_argument(
        "--an1",
        choices=["alternate", "only", "never"],
        default="alternate",
        help="AN1 link usage across the sweep (default: alternate with Ethernet)",
    )
    ap.add_argument(
        "--timeout", type=float, default=120.0, help="per-seed timeout in seconds"
    )
    args = ap.parse_args()

    failures: list[str] = []
    for i in range(args.seeds):
        seed = args.start + i
        an1 = args.an1 == "only" or (args.an1 == "alternate" and i % 2 == 1)
        ok, why = run_one(args.bench, seed, an1, args.timeout)
        link = "an1" if an1 else "eth"
        status = "ok" if ok else f"FAIL: {why}"
        print(f"seed {seed:>4} [{link}] {status}")
        if not ok:
            failures.append(f"seed {seed} [{link}]: {why}")

    print(f"\n{args.seeds - len(failures)}/{args.seeds} seeds passed")
    if failures:
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
