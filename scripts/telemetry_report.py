#!/usr/bin/env python3
"""Summarize and validate a telemetry JSONL export (sim::Telemetry).

A bench run with `--telemetry-jsonl <path>` (or a watchdog postmortem
bundle's telemetry.jsonl) holds one JSON object per line, one per series:

    {"name": str, "kind": "counter"|"gauge", "unit": str,
     "wallclock": bool, "cadence_ns": int, "samples": int,
     "dropped": int, "monotone_violations": int,
     "points": [[t_ns, value], ...]}

`points` is the ring-buffer tail: the newest min(samples, ring) samples in
time order. `samples` counts everything ever sampled; `dropped` counts the
oldest points the fixed-memory ring overwrote.

The report prints one row per series (kind, unit, points retained/sampled,
first/last timestamp, last and peak value). Validation enforces what the
sampler guarantees:

  * timestamps strictly increasing within every series;
  * at most one sample per cadence interval (the sampler's floor rule:
    consecutive retained points land in distinct [k*cadence, (k+1)*cadence)
    buckets -- sample times are event times, not cadence multiples);
  * counter series non-decreasing across retained points, and
    monotone_violations == 0;
  * samples == len(points) + dropped.

Usage:
    telemetry_report.py telemetry.jsonl [more.jsonl ...]

Exit status 0 iff every file validates. No third-party dependencies.
"""

import json
import sys


def fail(path, name, msg):
    print(f"{path}: series {name!r}: {msg}", file=sys.stderr)
    return False


def check_series(path, s):
    name = s.get("name", "<unnamed>")
    ok = True
    for key in ("name", "kind", "unit", "cadence_ns", "samples", "dropped",
                "monotone_violations", "points"):
        if key not in s:
            ok = fail(path, name, f"missing key {key!r}")
    if not ok:
        return False
    points = s["points"]
    cadence = s["cadence_ns"]
    if cadence <= 0:
        ok = fail(path, name, f"cadence_ns = {cadence}, must be positive")
    if s["samples"] != len(points) + s["dropped"]:
        ok = fail(path, name,
                  f"samples = {s['samples']} != retained {len(points)} + "
                  f"dropped {s['dropped']}")
    if s["kind"] == "counter" and s["monotone_violations"] != 0:
        ok = fail(path, name, f"monotone_violations = "
                              f"{s['monotone_violations']}, counter series "
                              "must never decrease")
    prev_t, prev_v = None, None
    for i, pt in enumerate(points):
        if not (isinstance(pt, list) and len(pt) == 2):
            ok = fail(path, name, f"points[{i}] is not a [t, v] pair")
            continue
        t, v = pt
        if prev_t is not None:
            if t <= prev_t:
                ok = fail(path, name, f"points[{i}]: t = {t} <= previous "
                                      f"{prev_t}, timestamps must be "
                                      "strictly increasing")
            elif cadence > 0 and t // cadence <= prev_t // cadence:
                ok = fail(path, name, f"points[{i}]: t = {t} and previous "
                                      f"{prev_t} share one {cadence} ns "
                                      "cadence interval (more than one "
                                      "sample per interval)")
            if s["kind"] == "counter" and v < prev_v:
                ok = fail(path, name, f"points[{i}]: counter fell from "
                                      f"{prev_v} to {v}")
        prev_t, prev_v = t, v
    return ok


def report_row(s):
    points = s.get("points", [])
    first_t = points[0][0] if points else 0
    last_t = points[-1][0] if points else 0
    last_v = points[-1][1] if points else 0
    peak = max((p[1] for p in points), default=0)
    flags = " wallclock" if s.get("wallclock") else ""
    print(f"  {s.get('name', '?'):40s} {s.get('kind', '?'):8s} "
          f"{s.get('unit', '?'):8s} {len(points)}/{s.get('samples', 0)} pts "
          f"[{first_t}..{last_t}] last={last_v} peak={peak}{flags}")


def check_file(path):
    ok = True
    series = []
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    series.append(json.loads(line))
                except json.JSONDecodeError as e:
                    ok = fail(path, f"line {lineno}", f"not JSON: {e}")
    except OSError as e:
        print(f"{path}: unreadable: {e}", file=sys.stderr)
        return False
    if not series:
        print(f"{path}: no series found", file=sys.stderr)
        return False
    print(f"{path}: {len(series)} series")
    for s in series:
        if not isinstance(s, dict):
            ok = fail(path, "<line>", "not an object")
            continue
        report_row(s)
        ok = check_series(path, s) and ok
    if ok:
        print(f"{path}: OK")
    return ok


def main(argv):
    if not argv or argv in (["-h"], ["--help"]):
        print(__doc__)
        return 2
    ok = True
    for path in argv:
        ok = check_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
