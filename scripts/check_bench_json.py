#!/usr/bin/env python3
"""Validate the --json output of the exhibit benchmarks.

Every bench in bench/ that reproduces a paper exhibit accepts
`--json <path>` and writes one object in the shared schema:

    {"schema_version": 1,
     "bench": str,                 # binary name
     "exhibit": str,               # "Table 2", "Figure 1", ...
     "results": [                  # non-empty
        {"label": str,             # row / system name
         "metric": str,            # e.g. "throughput"
         "unit": str,              # e.g. "Mb/s"
         "value": number | null,   # null = measurement failed
         "paper_value": number,    # optional: the paper's published value
         "params": {str: number},  # optional: e.g. {"write_size": 512}
         "kind": str},             # optional: "simulated" | "wallclock"
        ...]}

Wall-clock results ("kind": "wallclock") are host-dependent and compared
against a committed baseline with a tolerance band by scripts/perf_gate.py;
simulated results must be bit-identical across runs.

Latency-histogram rows: a bench that exports a per-stage latency histogram
emits one row per percentile, all sharing one label (conventionally
"hist.<stage>") with metric in {p50, p90, p99, max} and params.count set to
the sample count. For every label that emits any of those metrics this
checker enforces the group contract: all four metrics present exactly once,
percentiles monotone (p50 <= p90 <= p99 <= max), and every row of the group
carrying the same params.count.

Telemetry-series rows: a bench run with --telemetry exports each sampled
time series as a "series.<name>" row group (bench/bench_util.h
add_telemetry): metrics `samples`, `last` and `max` exactly once each,
counters additionally `dropped` and `monotone_violations`, every row of
the group carrying the same positive params.cadence_ns and the same kind.
`samples` must be >= 1 (an armed sampler that never fired is a cadence
bug), `max` >= `last` (the peak includes the final sample), and
`monotone_violations` rides the zero-metric contract: a sampled counter
that ever decreased is a broken run.

Usage:
    check_bench_json.py out.json [more.json ...]
    check_bench_json.py --bench path/to/bench_binary
        (runs `binary --json <tmpfile>` and validates the tmpfile)

Exit status 0 iff every file validates. No third-party dependencies.
"""

import json
import numbers
import os
import subprocess
import sys
import tempfile

RESULT_REQUIRED = {"label": str, "metric": str, "unit": str}
RESULT_OPTIONAL = {"value", "paper_value", "params", "kind"}
RESULT_KINDS = {"simulated", "wallclock"}

# Per-bench label contracts: benches whose downstream consumers (ctest
# gates, sweep drivers) key on specific labels must always emit them.
BENCH_REQUIRED_LABELS = {
    "bench_chaos": {
        "survivor", "crash", "leaks.channels", "leaks.bqis",
        "reclaims.channels", "reclaims.rsts", "replay",
    },
    # Labels the quick-mode run of the connection-scale bench must emit
    # (the full matrix is a superset; scale_full gates it via perf_gate).
    # `bpf` is the aggregated one-pass-trie engine, `bpflin` the legacy
    # linear walk; the cfg/* groups are the self-describing baselines.
    "bench_scale_conns": {
        "synth/eth/n1", "synth/eth/n8", "synth/an1/n8", "bpf/eth/n8",
        "bpflin/eth/n8", "cfg/synth", "cfg/bpf", "cfg/bpflin",
        "fastpath/on/n8", "fastpath/off/n8", "coalesce/on/n8",
        "fastpath/neutrality", "coalesce/effect",
        "mem/synth/eth/n8", "mem/bpf/eth/n8",
    },
    # Partitioned scale-out: labels the quick-mode run must emit (one grid
    # cell, run on both the serial reference and the parallel executor,
    # plus the self-describing config group). The full grid up to the
    # 10240-connection cell is a superset gated by scale_fabric_full.
    "bench_scale_fabric": {
        "grid/p2/c32", "cfg/fabric",
    },
    # Byzantine isolation: victim survival, wire integrity, the policer
    # counters and the attacker-teardown census, plus replay identity.
    "bench_byzantine": {
        "victim", "wire", "policer", "teardown", "replay",
    },
    # Tenant-isolation matrix: every scenario cell (solo + five adversary
    # kinds, policed and unpoliced) plus the two summary rows. The rtt/*
    # histogram groups ride the generic percentile-group contract.
    "bench_tenant_isolation": {
        "solo/unpoliced", "solo/policed",
        "hoarder/unpoliced", "hoarder/policed",
        "starver/unpoliced", "starver/policed",
        "forger/unpoliced", "forger/policed",
        "flooder/unpoliced", "flooder/policed",
        "spammer/unpoliced", "spammer/policed",
        "fairness", "wire",
    },
    # Copy-elision ablation: knob models (model/) and real mechanisms
    # (real/) per organization, plus the loan census of the real user-level
    # zero-copy run (whose loans_outstanding row must be exactly 0).
    "bench_ablation_zerocopy": {
        "model/ik/copy", "model/ik/zc", "real/ik/copy", "real/ik/zc",
        "model/ss/copy", "model/ss/zc", "real/ss/copy", "real/ss/zc",
        "model/ul/copy", "model/ul/zc", "real/ul/copy", "real/ul/zc",
        "zc/ul",
    },
}

# Counter contract: rows with these metrics are invariants, not
# measurements -- any run that emits one with a non-zero value is broken
# regardless of what the baseline says (the differential shadow disagreed
# with the reference demux walk; a loaned receive buffer was never
# returned to the pool; a frame with a forged header template reached the
# wire past the send-side check; the partitioned executor's merged event
# order diverged from the serial reference).
ZERO_METRICS = {"demux_diff_mismatches", "loans_outstanding",
                "forged_frames_on_wire", "fingerprint_mismatch",
                "telemetry_series_mismatch", "monotone_violations"}


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return False


def is_number(v):
    return isinstance(v, numbers.Real) and not isinstance(v, bool)


def check_result(path, i, r):
    if not isinstance(r, dict):
        return fail(path, f"results[{i}] is not an object")
    ok = True
    for key, typ in RESULT_REQUIRED.items():
        if key not in r:
            ok = fail(path, f"results[{i}] missing '{key}'")
        elif not isinstance(r[key], typ):
            ok = fail(path, f"results[{i}].{key} is not a {typ.__name__}")
    unknown = set(r) - set(RESULT_REQUIRED) - RESULT_OPTIONAL
    if unknown:
        ok = fail(path, f"results[{i}] has unknown keys {sorted(unknown)}")
    if "value" not in r:
        ok = fail(path, f"results[{i}] missing 'value'")
    elif r["value"] is not None and not is_number(r["value"]):
        ok = fail(path, f"results[{i}].value is not a number or null")
    if "paper_value" in r and not is_number(r["paper_value"]):
        ok = fail(path, f"results[{i}].paper_value is not a number")
    if "kind" in r and r["kind"] not in RESULT_KINDS:
        ok = fail(path, f"results[{i}].kind is {r['kind']!r}, "
                        f"expected one of {sorted(RESULT_KINDS)}")
    if "params" in r:
        if not isinstance(r["params"], dict):
            ok = fail(path, f"results[{i}].params is not an object")
        else:
            for k, v in r["params"].items():
                if not isinstance(k, str) or not is_number(v):
                    ok = fail(path, f"results[{i}].params[{k!r}] malformed")
    return ok


HIST_METRICS = ("p50", "p90", "p99", "max")


def check_histograms(path, results):
    """Validate percentile row groups (see module docstring)."""
    groups = {}
    for i, r in enumerate(results):
        if not isinstance(r, dict) or r.get("metric") not in HIST_METRICS:
            continue
        label = r.get("label")
        # series.* groups emit a `max` row too, but follow the telemetry
        # contract (check_series), not the percentile one.
        if isinstance(label, str) and label.startswith("series."):
            continue
        groups.setdefault(label, []).append((i, r))
    ok = True
    for label, rows in groups.items():
        metrics = [r.get("metric") for _, r in rows]
        for m in HIST_METRICS:
            n = metrics.count(m)
            if n != 1:
                ok = fail(path, f"histogram {label!r}: metric '{m}' appears "
                                f"{n} times, expected exactly 1")
        by_metric = {r.get("metric"): r for _, r in rows}
        if all(m in by_metric for m in HIST_METRICS):
            vals = [by_metric[m].get("value") for m in HIST_METRICS]
            if all(is_number(v) for v in vals):
                for lo, hi in zip(HIST_METRICS, HIST_METRICS[1:]):
                    if by_metric[lo]["value"] > by_metric[hi]["value"]:
                        ok = fail(path, f"histogram {label!r}: {lo}="
                                        f"{by_metric[lo]['value']} > {hi}="
                                        f"{by_metric[hi]['value']} "
                                        "(percentiles must be monotone)")
            else:
                ok = fail(path, f"histogram {label!r}: null percentile value")
        counts = set()
        for i, r in rows:
            params = r.get("params")
            if not isinstance(params, dict) or "count" not in params:
                ok = fail(path, f"results[{i}] (histogram {label!r}) "
                                "missing params.count")
            else:
                counts.add(params["count"])
        if len(counts) > 1:
            ok = fail(path, f"histogram {label!r}: rows disagree on "
                            f"params.count {sorted(counts)}")
    return ok


SERIES_REQUIRED = ("samples", "last", "max")
SERIES_COUNTER_ONLY = ("dropped", "monotone_violations")


def check_series(path, results):
    """Validate telemetry series.* row groups (see module docstring)."""
    groups = {}
    for i, r in enumerate(results):
        if not isinstance(r, dict):
            continue
        label = r.get("label")
        if isinstance(label, str) and label.startswith("series."):
            groups.setdefault(label, []).append((i, r))
    ok = True
    for label, rows in groups.items():
        metrics = [r.get("metric") for _, r in rows]
        for m in SERIES_REQUIRED:
            n = metrics.count(m)
            if n != 1:
                ok = fail(path, f"series {label!r}: metric '{m}' appears "
                                f"{n} times, expected exactly 1")
        for m in SERIES_COUNTER_ONLY:
            if metrics.count(m) > 1:
                ok = fail(path, f"series {label!r}: metric '{m}' appears "
                                f"{metrics.count(m)} times")
        extra = set(metrics) - set(SERIES_REQUIRED) - set(SERIES_COUNTER_ONLY)
        if extra:
            ok = fail(path, f"series {label!r}: unknown metrics "
                            f"{sorted(extra)}")
        by_metric = {r.get("metric"): r for _, r in rows}
        samples = by_metric.get("samples", {}).get("value")
        if is_number(samples) and samples < 1:
            ok = fail(path, f"series {label!r}: samples = {samples}, an "
                            "armed sampler must have fired at least once")
        last = by_metric.get("last", {}).get("value")
        peak = by_metric.get("max", {}).get("value")
        if is_number(last) and is_number(peak) and peak < last:
            ok = fail(path, f"series {label!r}: max = {peak} < last = "
                            f"{last} (the peak includes the final sample)")
        cadences, kinds = set(), set()
        for i, r in rows:
            params = r.get("params")
            if not isinstance(params, dict) or "cadence_ns" not in params:
                ok = fail(path, f"results[{i}] (series {label!r}) missing "
                                "params.cadence_ns")
            else:
                cadences.add(params["cadence_ns"])
            kinds.add(r.get("kind"))
        if len(cadences) > 1:
            ok = fail(path, f"series {label!r}: rows disagree on "
                            f"params.cadence_ns {sorted(cadences)}")
        if any(is_number(c) and c <= 0 for c in cadences):
            ok = fail(path, f"series {label!r}: params.cadence_ns must be "
                            "positive")
        if len(kinds) > 1:
            ok = fail(path, f"series {label!r}: rows disagree on kind "
                            f"{sorted(str(k) for k in kinds)}")
    return ok


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or not JSON: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    ok = True
    if doc.get("schema_version") != 1:
        ok = fail(path, f"schema_version is {doc.get('schema_version')!r}, "
                        "expected 1")
    for key in ("bench", "exhibit"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            ok = fail(path, f"'{key}' missing or not a non-empty string")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return fail(path, "'results' missing or empty")
    for i, r in enumerate(results):
        ok = check_result(path, i, r) and ok
        if (isinstance(r, dict) and r.get("metric") in ZERO_METRICS
                and is_number(r.get("value")) and r["value"] != 0):
            ok = fail(path, f"results[{i}] ({r.get('label')}): "
                            f"{r['metric']} = {r['value']}, must be 0")
    ok = check_histograms(path, results) and ok
    ok = check_series(path, results) and ok
    required = BENCH_REQUIRED_LABELS.get(doc.get("bench"), set())
    labels = {r.get("label") for r in results if isinstance(r, dict)}
    missing = required - labels
    if missing:
        ok = fail(path, f"{doc.get('bench')} output missing required labels "
                        f"{sorted(missing)}")
    if ok:
        print(f"{path}: OK ({doc['bench']}, {doc['exhibit']}, "
              f"{len(results)} results)")
    return ok


def run_bench(binary, extra_args):
    fd, path = tempfile.mkstemp(suffix=".json", prefix="bench_")
    os.close(fd)
    try:
        proc = subprocess.run([binary, *extra_args, "--json", path],
                              stdout=subprocess.DEVNULL, timeout=600)
        if proc.returncode != 0:
            return fail(binary, f"exited with {proc.returncode}")
        return check_file(path)
    finally:
        os.unlink(path)


def main(argv):
    if not argv or argv in (["-h"], ["--help"]):
        print(__doc__)
        return 2
    ok = True
    extra_args = []
    i = 0
    while i < len(argv):
        if argv[i] == "--bench":
            if i + 1 >= len(argv):
                return fail("argv", "--bench needs a binary path") or 2
            ok = run_bench(argv[i + 1], extra_args) and ok
            i += 2
        elif argv[i] == "--bench-args":
            # One extra argument (repeatable) passed to later --bench runs,
            # e.g. `--bench-args --quick --bench path/to/bench_hotpath`.
            if i + 1 >= len(argv):
                return fail("argv", "--bench-args needs an argument") or 2
            extra_args.append(argv[i + 1])
            i += 2
        else:
            ok = check_file(argv[i]) and ok
            i += 1
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
