#!/usr/bin/env python3
"""Compare a fresh bench_hotpath run against the committed baseline.

Wall-clock results ("kind": "wallclock") are host-dependent, so they are
compared with a tolerance band: the gate fails only when the fresh value is
worse than the baseline by more than --tolerance (default 0.30, i.e. 30%).
Direction comes from the result's params.higher_is_better (0 = lower is
better, e.g. ns/op; 1 = higher is better, e.g. MB/s). Results without the
param default to lower-is-better.

Simulated results ("kind": "simulated") are deterministic by construction
and must match the baseline exactly -- any drift means the change altered
simulated behaviour, not just wall-clock performance.

Usage:
    perf_gate.py --baseline bench/BENCH_hotpath.json --fresh out.json
    perf_gate.py --baseline bench/BENCH_hotpath.json --run path/to/bench_hotpath
        (runs `bench_hotpath --json <tmpfile>` and gates the tmpfile)

Options:
    --tolerance FRACTION   allowed wall-clock regression (default 0.30)
    --quick                pass --quick to the bench in --run mode

Refreshing the baseline after a deliberate change:
    build/bench/bench_hotpath --json bench/BENCH_hotpath.json

Exit status 0 iff every gated result passes. No third-party dependencies.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def index_results(doc):
    out = {}
    for r in doc.get("results", []):
        out[(r["label"], r["metric"])] = r
    return out


def gate(baseline_doc, fresh_doc, tolerance):
    base = index_results(baseline_doc)
    fresh = index_results(fresh_doc)
    failures = []
    compared = 0
    for key, b in sorted(base.items()):
        label = f"{key[0]}/{key[1]}"
        f = fresh.get(key)
        if f is None:
            failures.append(f"{label}: missing from fresh run")
            continue
        bv, fv = b.get("value"), f.get("value")
        if bv is None or fv is None:
            failures.append(f"{label}: null value (baseline={bv}, fresh={fv})")
            continue
        kind = b.get("kind", "simulated")
        compared += 1
        if kind == "simulated":
            if fv != bv:
                failures.append(
                    f"{label}: simulated value drifted "
                    f"(baseline {bv}, fresh {fv}) -- simulated results must "
                    "be bit-identical")
            else:
                print(f"  OK  {label}: {fv} (exact)")
            continue
        higher_is_better = bool(b.get("params", {}).get("higher_is_better", 0))
        if higher_is_better:
            limit = bv * (1.0 - tolerance)
            bad = fv < limit
            rel = (bv - fv) / bv if bv else 0.0
        else:
            limit = bv * (1.0 + tolerance)
            bad = fv > limit
            rel = (fv - bv) / bv if bv else 0.0
        verdict = "FAIL" if bad else "  OK"
        print(f"{verdict}  {label}: baseline {bv:g}, fresh {fv:g} "
              f"({rel:+.1%} vs limit {tolerance:.0%})")
        if bad:
            failures.append(
                f"{label}: regressed {rel:.1%} beyond the {tolerance:.0%} "
                f"band (baseline {bv:g}, fresh {fv:g})")
    if compared == 0:
        failures.append("no comparable results between baseline and fresh run")
    return failures


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--fresh")
    ap.add_argument("--run", help="bench binary to execute for the fresh run")
    ap.add_argument("--tolerance", type=float, default=0.30)
    ap.add_argument("--quick", action="store_true",
                    help="pass --quick to the bench in --run mode")
    args = ap.parse_args(argv)
    if bool(args.fresh) == bool(args.run):
        ap.error("exactly one of --fresh / --run is required")

    baseline_doc = load(args.baseline)

    if args.run:
        fd, path = tempfile.mkstemp(suffix=".json", prefix="hotpath_")
        os.close(fd)
        try:
            cmd = [args.run, "--json", path]
            if args.quick:
                cmd.append("--quick")
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL, timeout=600)
            if proc.returncode != 0:
                print(f"{args.run}: exited with {proc.returncode}",
                      file=sys.stderr)
                return 1
            fresh_doc = load(path)
        finally:
            os.unlink(path)
    else:
        fresh_doc = load(args.fresh)

    failures = gate(baseline_doc, fresh_doc, args.tolerance)
    if failures:
        print(f"\nperf gate FAILED ({len(failures)} problem(s)):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
