#!/usr/bin/env python3
"""Compare a fresh bench_hotpath run against the committed baseline.

Wall-clock results ("kind": "wallclock") are host-dependent, so they are
compared with a tolerance band: the gate fails only when the fresh value is
worse than the baseline by more than --tolerance (default 0.30, i.e. 30%).
Direction comes from the result's params.higher_is_better (0 = lower is
better, e.g. ns/op; 1 = higher is better, e.g. MB/s). Results without the
param default to lower-is-better.

Simulated results ("kind": "simulated") are deterministic by construction
and must match the baseline exactly -- any drift means the change altered
simulated behaviour, not just wall-clock performance.

Usage:
    perf_gate.py --baseline bench/BENCH_hotpath.json --fresh out.json
    perf_gate.py --baseline bench/BENCH_hotpath.json --run path/to/bench_hotpath
        (runs `bench_hotpath --json <tmpfile>` and gates the tmpfile)

Every failure message names the offending row's label/metric and carries
the numbers needed to act on it -- both values and, for banded rows, the
limit the fresh value crossed -- so a red gate in CI is diagnosable from
the log alone, without re-running the bench locally.

Options:
    --tolerance FRACTION   allowed wall-clock regression (default 0.30)
    --quick                pass --quick to the bench in --run mode
    --selftest             run the built-in fixture checks and exit
                           (verifies every failure class reports its label
                           and values; wired into ctest as perf_gate_selftest)

Refreshing the baseline after a deliberate change:
    build/bench/bench_hotpath --json bench/BENCH_hotpath.json

Exit status 0 iff every gated result passes. No third-party dependencies.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def index_results(doc):
    out = {}
    for r in doc.get("results", []):
        out[(r["label"], r["metric"])] = r
    return out


def gate(baseline_doc, fresh_doc, tolerance):
    base = index_results(baseline_doc)
    fresh = index_results(fresh_doc)
    failures = []
    compared = 0
    for key, b in sorted(base.items()):
        label = f"{key[0]}/{key[1]}"
        f = fresh.get(key)
        if f is None:
            failures.append(f"{label}: missing from fresh run "
                            f"(baseline {b.get('value')})")
            continue
        bv, fv = b.get("value"), f.get("value")
        if bv is None or fv is None:
            failures.append(f"{label}: null value "
                            f"(baseline {bv}, fresh {fv})")
            continue
        kind = b.get("kind", "simulated")
        compared += 1
        if kind == "simulated":
            if fv != bv:
                failures.append(
                    f"{label}: simulated value drifted "
                    f"(baseline {bv:g}, fresh {fv:g}) -- simulated results "
                    "must be bit-identical")
            else:
                print(f"  OK  {label}: {fv} (exact)")
            continue
        higher_is_better = bool(b.get("params", {}).get("higher_is_better", 0))
        if higher_is_better:
            limit = bv * (1.0 - tolerance)
            bad = fv < limit
            rel = (bv - fv) / bv if bv else 0.0
        else:
            limit = bv * (1.0 + tolerance)
            bad = fv > limit
            rel = (fv - bv) / bv if bv else 0.0
        verdict = "FAIL" if bad else "  OK"
        print(f"{verdict}  {label}: baseline {bv:g}, fresh {fv:g} "
              f"({rel:+.1%} vs limit {tolerance:.0%})")
        if bad:
            failures.append(
                f"{label}: regressed {rel:.1%} beyond the {tolerance:.0%} "
                f"band (baseline {bv:g}, fresh {fv:g}, limit {limit:g})")
    if compared == 0:
        failures.append("no comparable results between baseline and fresh run")
    return failures


def selftest():
    """Fixture checks: every failure class must name its row and values."""
    base = {"results": [
        {"label": "lat", "metric": "ns_op", "unit": "ns", "value": 100,
         "kind": "wallclock"},
        {"label": "thr", "metric": "mbps", "unit": "Mb/s", "value": 100,
         "kind": "wallclock", "params": {"higher_is_better": 1}},
        {"label": "cnt", "metric": "events", "unit": "count", "value": 7,
         "kind": "simulated"},
        {"label": "gone", "metric": "rows", "unit": "count", "value": 3,
         "kind": "wallclock"},
        {"label": "nul", "metric": "probe", "unit": "ns", "value": 50,
         "kind": "wallclock"},
    ]}
    fresh = {"results": [
        {"label": "lat", "metric": "ns_op", "unit": "ns", "value": 140,
         "kind": "wallclock"},
        {"label": "thr", "metric": "mbps", "unit": "Mb/s", "value": 60,
         "kind": "wallclock", "params": {"higher_is_better": 1}},
        {"label": "cnt", "metric": "events", "unit": "count", "value": 8,
         "kind": "simulated"},
        {"label": "nul", "metric": "probe", "unit": "ns", "value": None,
         "kind": "wallclock"},
    ]}
    failures = gate(base, fresh, 0.30)
    # (label/metric, substrings its failure message must carry)
    expected = [
        ("lat/ns_op", ["baseline 100", "fresh 140", "limit 130"]),
        ("thr/mbps", ["baseline 100", "fresh 60", "limit 70"]),
        ("cnt/events", ["baseline 7", "fresh 8", "drifted"]),
        ("gone/rows", ["missing from fresh run", "baseline 3"]),
        ("nul/probe", ["null value", "baseline 50"]),
    ]
    problems = []
    if len(failures) != len(expected):
        problems.append(f"expected {len(expected)} failures, got "
                        f"{len(failures)}: {failures}")
    for row, needles in expected:
        match = [m for m in failures if m.startswith(row + ":")]
        if len(match) != 1:
            problems.append(f"no unique failure for {row}: {failures}")
            continue
        for needle in needles:
            if needle not in match[0]:
                problems.append(f"{row}: message {match[0]!r} lacks "
                                f"{needle!r}")
    # A clean comparison must produce no failures at all.
    clean = gate(base, base, 0.30)
    if clean:
        problems.append(f"identical docs reported failures: {clean}")
    # Values inside the band must pass.
    ok_fresh = {"results": [dict(base["results"][0], value=120)]}
    ok_base = {"results": [base["results"][0]]}
    if gate(ok_base, ok_fresh, 0.30):
        problems.append("a +20% wallclock value failed the 30% band")
    if problems:
        for p in problems:
            print(f"selftest: {p}", file=sys.stderr)
        print("perf_gate selftest FAILED", file=sys.stderr)
        return 1
    print("perf_gate selftest passed")
    return 0


def main(argv):
    if argv and argv[0] == "--selftest":
        return selftest()
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--fresh")
    ap.add_argument("--run", help="bench binary to execute for the fresh run")
    ap.add_argument("--tolerance", type=float, default=0.30)
    ap.add_argument("--quick", action="store_true",
                    help="pass --quick to the bench in --run mode")
    args = ap.parse_args(argv)
    if bool(args.fresh) == bool(args.run):
        ap.error("exactly one of --fresh / --run is required")

    baseline_doc = load(args.baseline)

    if args.run:
        fd, path = tempfile.mkstemp(suffix=".json", prefix="hotpath_")
        os.close(fd)
        try:
            cmd = [args.run, "--json", path]
            if args.quick:
                cmd.append("--quick")
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL, timeout=600)
            if proc.returncode != 0:
                print(f"{args.run}: exited with {proc.returncode}",
                      file=sys.stderr)
                return 1
            fresh_doc = load(path)
        finally:
            os.unlink(path)
    else:
        fresh_doc = load(args.fresh)

    failures = gate(baseline_doc, fresh_doc, args.tolerance)
    if failures:
        print(f"\nperf gate FAILED ({len(failures)} problem(s)):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
