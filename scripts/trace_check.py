#!/usr/bin/env python3
"""Validate a ulnet Chrome/Perfetto trace and summarize stage latencies.

The simulator's tracer (sim::Tracer::write_chrome_json) emits the Chrome
trace_event format:

  * async stage spans  -- cat "ulnet.span", ph "b"/"e", paired by
    (name, id, pid): one interval per packet per stage ("wire", "rxring").
  * flow arrows        -- cat "ulnet.flow", ph "s"/"f", paired by
    (name, id): packet hand-offs ("pkt") and causal links ("cause.rtx",
    "cause.ack").
  * instant events     -- cat "ulnet", ph "i": the point-event firehose.

This checker enforces the structural invariants the instrumentation
guarantees on a faultless run:

  1. every span end has a matching earlier begin, and nothing stays open
     at end of trace (chaos teardown must close "rxring" spans);
  2. span intervals are non-negative;
  3. every flow head ("f") has a matching earlier tail ("s");
  4. flow tails are all consumed (an unmatched "s" means a packet vanished
     -- only legal on lossy/chaos runs, see --allow-dangling-flows);
  5. the tracer ring did not overwrite events (otherwise pairing cannot be
     judged; see --allow-truncated).

It then prints a per-stage latency table (count / p50 / p90 / p99 / max in
simulated nanoseconds) from the matched span intervals, plus flow counts.

Usage:
    trace_check.py trace.json [more.json ...]
    trace_check.py --allow-dangling-flows trace.json
    trace_check.py --bench path/to/binary [--bench-args ARG ...]
        (runs `binary [ARGS] --trace <tmpfile>` and validates the tmpfile)

Exit status 0 iff every trace validates. No third-party dependencies.
"""

import json
import os
import subprocess
import sys
import tempfile

TOP_N = 12  # stages shown in the latency summary


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return False


def percentile(sorted_vals, p):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(p * (len(sorted_vals) - 1) + 0.5))
    return sorted_vals[idx]


def check_trace(path, allow_dangling_flows=False, allow_truncated=False):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or not JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"),
                                                   list):
        return fail(path, "not a Chrome trace (no traceEvents array)")
    events = doc["traceEvents"]
    ok = True

    overwritten = doc.get("otherData", {}).get("overwritten", 0)
    if overwritten and not allow_truncated:
        ok = fail(path, f"tracer ring overwrote {overwritten} events; "
                        "pairing cannot be validated (raise the tracer "
                        "capacity or pass --allow-truncated)")

    open_spans = {}     # (name, id, pid) -> [begin_ts, ...] (stack)
    durations = {}      # name -> [ns, ...]
    open_flows = {}     # (name, id) -> count of unmatched "s"
    flow_counts = {}    # name -> completed pairs
    counts = {"b": 0, "e": 0, "s": 0, "f": 0, "i": 0}

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            ok = fail(path, f"traceEvents[{i}] is not an object")
            continue
        ph = ev.get("ph")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            ok = fail(path, f"traceEvents[{i}] has no numeric ts")
            continue
        if ph in counts:
            counts[ph] += 1
        if ph == "b":
            key = (ev.get("name"), ev.get("id"), ev.get("pid"))
            open_spans.setdefault(key, []).append(ts)
        elif ph == "e":
            key = (ev.get("name"), ev.get("id"), ev.get("pid"))
            stack = open_spans.get(key)
            if not stack:
                ok = fail(path, f"traceEvents[{i}]: span end without begin "
                                f"(name={key[0]!r} id={key[1]} pid={key[2]})")
                continue
            begin_ts = stack.pop()
            if not stack:
                del open_spans[key]
            if ts < begin_ts:
                ok = fail(path, f"traceEvents[{i}]: span {key[0]!r} ends at "
                                f"{ts}us before its begin at {begin_ts}us")
                continue
            # ts is fractional microseconds; store nanoseconds.
            durations.setdefault(ev.get("name"), []).append(
                (ts - begin_ts) * 1000.0)
        elif ph == "s":
            key = (ev.get("name"), ev.get("id"))
            open_flows[key] = open_flows.get(key, 0) + 1
        elif ph == "f":
            key = (ev.get("name"), ev.get("id"))
            if open_flows.get(key, 0) <= 0:
                ok = fail(path, f"traceEvents[{i}]: flow head without tail "
                                f"(name={key[0]!r} id={key[1]})")
                continue
            open_flows[key] -= 1
            if open_flows[key] == 0:
                del open_flows[key]
            flow_counts[ev.get("name")] = flow_counts.get(ev.get("name"),
                                                          0) + 1

    if open_spans:
        sample = sorted(open_spans)[:5]
        ok = fail(path, f"{len(open_spans)} span(s) never closed, e.g. "
                        f"{sample}")
    if open_flows:
        dangling = sum(open_flows.values())
        by_name = {}
        for (name, _), n in open_flows.items():
            by_name[name] = by_name.get(name, 0) + n
        msg = (f"{dangling} flow tail(s) never consumed: "
               f"{dict(sorted(by_name.items()))}")
        if allow_dangling_flows:
            print(f"{path}: note: {msg} (allowed)")
        else:
            ok = fail(path, msg + " (lossy run? pass --allow-dangling-flows)")

    print(f"{path}: {len(events)} events "
          f"(spans {counts['b']}b/{counts['e']}e, "
          f"flows {counts['s']}s/{counts['f']}f, instants {counts['i']})")
    if durations:
        print(f"  {'stage':<12}{'count':>8}{'p50 ns':>12}{'p90 ns':>12}"
              f"{'p99 ns':>12}{'max ns':>12}")
        ranked = sorted(durations.items(), key=lambda kv: -len(kv[1]))
        for name, vals in ranked[:TOP_N]:
            vals.sort()
            print(f"  {str(name):<12}{len(vals):>8}"
                  f"{percentile(vals, 0.50):>12.0f}"
                  f"{percentile(vals, 0.90):>12.0f}"
                  f"{percentile(vals, 0.99):>12.0f}"
                  f"{vals[-1]:>12.0f}")
        if len(ranked) > TOP_N:
            print(f"  ... {len(ranked) - TOP_N} more stage(s)")
    for name, n in sorted(flow_counts.items()):
        print(f"  flow {name}: {n} pair(s)")
    if ok:
        print(f"{path}: OK")
    return ok


def run_bench(binary, extra_args, **kw):
    fd, path = tempfile.mkstemp(suffix=".json", prefix="trace_")
    os.close(fd)
    try:
        proc = subprocess.run([binary, *extra_args, "--trace", path],
                              stdout=subprocess.DEVNULL, timeout=600)
        if proc.returncode != 0:
            return fail(binary, f"exited with {proc.returncode}")
        return check_trace(path, **kw)
    finally:
        os.unlink(path)


def main(argv):
    if not argv or argv in (["-h"], ["--help"]):
        print(__doc__)
        return 2
    ok = True
    kw = {}
    extra_args = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--allow-dangling-flows":
            kw["allow_dangling_flows"] = True
            i += 1
        elif arg == "--allow-truncated":
            kw["allow_truncated"] = True
            i += 1
        elif arg == "--bench-args":
            if i + 1 >= len(argv):
                return fail("argv", "--bench-args needs an argument") or 2
            extra_args.append(argv[i + 1])
            i += 2
        elif arg == "--bench":
            if i + 1 >= len(argv):
                return fail("argv", "--bench needs a binary path") or 2
            ok = run_bench(argv[i + 1], extra_args, **kw) and ok
            i += 2
        else:
            ok = check_trace(arg, **kw) and ok
            i += 1
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
